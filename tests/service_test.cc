// Tests for the provenance query service: wire protocol framing, the
// graph registry's hot-swap semantics, the LRU response cache,
// cooperative cancellation (deadline + disconnect), and the serve daemon
// end to end over real sockets — including local/remote output parity
// (the protocol contract), admission control, fault injection, and
// graceful drain. The multi-threaded cases run under TSan in CI.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/fault.h"
#include "common/str_util.h"
#include "obs/json.h"
#include "provenance/graph.h"
#include "provenance/provio.h"
#include "provenance/snapshot.h"
#include "provenance/traverse.h"
#include "service/cache.h"
#include "service/client.h"
#include "service/ops.h"
#include "service/protocol.h"
#include "service/registry.h"
#include "service/server.h"
#include "test_util.h"
#include "workflowgen/dealership.h"

namespace lipstick {
namespace {

using service::GraphRegistry;
using service::LoadedGraph;
using service::ResponseCache;
using service::Server;
using service::ServerOptions;
using service::ServiceClient;

ProvenanceGraph BuildDealershipGraph() {
  workflowgen::DealershipConfig cfg;
  cfg.num_cars = 200;
  cfg.num_executions = 3;
  cfg.seed = 11;
  auto wf = workflowgen::DealershipWorkflow::Create(cfg);
  EXPECT_TRUE(wf.ok());
  ProvenanceGraph graph;
  EXPECT_TRUE((*wf)->Run(&graph).ok());
  graph.Seal();
  return graph;
}

// ---------------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------------

class ProtocolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().Reset();
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    FaultInjector::Global().Reset();
    if (fds_[0] >= 0) ::close(fds_[0]);
    if (fds_[1] >= 0) ::close(fds_[1]);
  }
  int fds_[2] = {-1, -1};
};

TEST_F(ProtocolTest, FrameRoundTrip) {
  std::string payload = "{\"op\":\"stats\"}";
  LIPSTICK_ASSERT_OK(service::WriteFrame(fds_[0], payload));
  Result<std::string> got = service::ReadFrame(fds_[1]);
  LIPSTICK_ASSERT_OK(got.status());
  EXPECT_EQ(*got, payload);
}

TEST_F(ProtocolTest, EmptyFrameRoundTrip) {
  LIPSTICK_ASSERT_OK(service::WriteFrame(fds_[0], ""));
  Result<std::string> got = service::ReadFrame(fds_[1]);
  LIPSTICK_ASSERT_OK(got.status());
  EXPECT_EQ(*got, "");
}

TEST_F(ProtocolTest, CleanEofIsAborted) {
  ::close(fds_[0]);
  fds_[0] = -1;
  Result<std::string> got = service::ReadFrame(fds_[1]);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kAborted);
}

TEST_F(ProtocolTest, OversizedLengthPrefixRejected) {
  // 0xFFFFFFFF length prefix: far beyond kMaxFrameBytes.
  char header[4] = {'\xff', '\xff', '\xff', '\xff'};
  ASSERT_EQ(::send(fds_[0], header, 4, 0), 4);
  Result<std::string> got = service::ReadFrame(fds_[1]);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ProtocolTest, TruncatedPayloadIsIOError) {
  char header[4] = {0, 0, 0, 10};  // promises 10 bytes, delivers 3
  ASSERT_EQ(::send(fds_[0], header, 4, 0), 4);
  ASSERT_EQ(::send(fds_[0], "abc", 3, 0), 3);
  ::close(fds_[0]);
  fds_[0] = -1;
  Result<std::string> got = service::ReadFrame(fds_[1]);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kIOError);
}

TEST_F(ProtocolTest, ReadFaultInjection) {
  FaultInjector::FaultSpec spec;
  spec.point = service::kFaultRead;
  spec.max_fires = 1;
  spec.code = StatusCode::kIOError;
  FaultInjector::Global().Arm(spec);
  LIPSTICK_ASSERT_OK(service::WriteFrame(fds_[0], "x"));
  Result<std::string> got = service::ReadFrame(fds_[1]);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kIOError);
  // Budget spent: the frame is still in the socket buffer and readable.
  got = service::ReadFrame(fds_[1]);
  LIPSTICK_EXPECT_OK(got.status());
}

TEST_F(ProtocolTest, WriteFaultInjection) {
  FaultInjector::FaultSpec spec;
  spec.point = service::kFaultWrite;
  spec.max_fires = 1;
  spec.code = StatusCode::kIOError;
  FaultInjector::Global().Arm(spec);
  EXPECT_FALSE(service::WriteFrame(fds_[0], "x").ok());
  LIPSTICK_EXPECT_OK(service::WriteFrame(fds_[0], "x"));
}

TEST(ProtocolCodes, ErrorCodeMappingRoundTrips) {
  for (StatusCode code :
       {StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kParseError,
        StatusCode::kTypeError, StatusCode::kExecutionError,
        StatusCode::kIOError, StatusCode::kInternal,
        StatusCode::kDeadlineExceeded, StatusCode::kUnavailable,
        StatusCode::kAborted}) {
    EXPECT_EQ(service::ErrorCodeFromString(service::ErrorCodeString(code)),
              code);
  }
  // The admission-control rejection maps to the retryable code.
  EXPECT_EQ(service::ErrorCodeFromString("overloaded"),
            StatusCode::kUnavailable);
  EXPECT_EQ(service::ErrorCodeFromString("no-such-code"),
            StatusCode::kInternal);
}

TEST(ProtocolCodes, ErrorLineFormat) {
  EXPECT_EQ(service::ErrorLine(Status::InvalidArgument("bad node id '?'")),
            "error: invalid_argument: bad node id '?'");
  EXPECT_EQ(service::ErrorLine("overloaded", "queue full"),
            "error: overloaded: queue full");
}

TEST(ProtocolEnvelope, ResponseRoundTrip) {
  Result<obs::JsonValue> ok =
      obs::ParseJson(service::OkResponse("hello\n").Serialize());
  LIPSTICK_ASSERT_OK(ok.status());
  Result<std::string> text = service::ResponseToResult(*ok);
  LIPSTICK_ASSERT_OK(text.status());
  EXPECT_EQ(*text, "hello\n");

  Result<obs::JsonValue> err = obs::ParseJson(
      service::ErrorResponse("deadline_exceeded", "too slow").Serialize());
  LIPSTICK_ASSERT_OK(err.status());
  Result<std::string> failed = service::ResponseToResult(*err);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(failed.status().message(), "too slow");

  Result<obs::JsonValue> junk = obs::ParseJson("{\"nope\":1}");
  LIPSTICK_ASSERT_OK(junk.status());
  EXPECT_EQ(service::ResponseToResult(*junk).status().code(),
            StatusCode::kInternal);
}

// ---------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------

TEST(CancelTokenTest, ExplicitCancelFirstReasonWins) {
  CancelToken token;
  EXPECT_FALSE(token.Poll());
  LIPSTICK_EXPECT_OK(token.status());
  token.Cancel(Status::Aborted("first"));
  token.Cancel(Status::DeadlineExceeded("second"));
  EXPECT_TRUE(token.Poll());
  EXPECT_EQ(token.status().code(), StatusCode::kAborted);
  EXPECT_EQ(token.status().message(), "first");
}

TEST(CancelTokenTest, DeadlineFires) {
  CancelToken token;
  token.SetDeadlineMs(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(token.CheckDeadlineNow());
  EXPECT_EQ(token.status().code(), StatusCode::kDeadlineExceeded);
  // Poll (stride-gated) observes the same cancellation.
  EXPECT_TRUE(token.Poll());
}

TEST(CancelTokenTest, ProbeFiresOnItsStride) {
  CancelToken token;
  std::atomic<int> probes{0};
  token.SetProbe([&probes] {
    probes.fetch_add(1);
    return true;
  });
  bool fired = false;
  for (uint32_t i = 0; i < CancelToken::kProbeStride + 1 && !fired; ++i) {
    fired = token.Poll();
  }
  EXPECT_TRUE(fired);
  EXPECT_EQ(probes.load(), 1);
  EXPECT_EQ(token.status().code(), StatusCode::kAborted);
}

TEST(CancelTokenTest, TraversalStopsOnCancelledToken) {
  ProvenanceGraph graph = BuildDealershipGraph();
  Result<GraphSnapshot> snap = GraphSnapshot::Capture(graph);
  LIPSTICK_ASSERT_OK(snap.status());

  // Baseline: full reachability from every root is most of the graph.
  std::vector<NodeId> all = graph.AllNodeIds();
  CancelToken token;
  token.Cancel(Status::Aborted("cancelled before the traversal began"));
  CancelScope scope(&token);
  VisitedLease visited = snap->AcquireVisited();
  std::vector<NodeId> reached = ParallelReach(
      *snap, std::span<const NodeId>(all.data(), 1),
      TraverseDirection::kForward, /*num_threads=*/1, *visited);
  // A pre-cancelled token stops the BFS at the first frontier pop.
  EXPECT_TRUE(reached.empty());
}

TEST(CancelTokenTest, ParallelTraversalDrainsCleanlyWhenCancelled) {
  ProvenanceGraph graph = BuildDealershipGraph();
  Result<GraphSnapshot> snap = GraphSnapshot::Capture(graph);
  LIPSTICK_ASSERT_OK(snap.status());
  std::vector<NodeId> all = graph.AllNodeIds();
  CancelToken token;
  token.Cancel(Status::Aborted("stop"));
  CancelScope scope(&token);
  VisitedLease visited = snap->AcquireVisited();
  // Must terminate (workers still meet the barrier) and visit ~nothing.
  std::vector<NodeId> reached = ParallelReach(
      *snap, std::span<const NodeId>(all.data(), std::min<size_t>(64, all.size())),
      TraverseDirection::kForward, /*num_threads=*/4, *visited);
  EXPECT_TRUE(reached.empty());
}

// ---------------------------------------------------------------------
// Cache
// ---------------------------------------------------------------------

TEST(ResponseCacheTest, LruEvictionAndCounters) {
  ResponseCache cache(2);
  std::string text;
  EXPECT_FALSE(cache.Get("a", &text));
  cache.Put("a", "A");
  cache.Put("b", "B");
  EXPECT_TRUE(cache.Get("a", &text));  // refreshes "a"
  EXPECT_EQ(text, "A");
  cache.Put("c", "C");  // evicts "b", the LRU entry
  EXPECT_FALSE(cache.Get("b", &text));
  EXPECT_TRUE(cache.Get("a", &text));
  EXPECT_TRUE(cache.Get("c", &text));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(ResponseCacheTest, ZeroCapacityDisables) {
  ResponseCache cache(0);
  cache.Put("a", "A");
  std::string text;
  EXPECT_FALSE(cache.Get("a", &text));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ResponseCacheTest, KeyIncludesEpochAndArgs) {
  EXPECT_NE(ResponseCache::Key("g", 0, "subgraph", {"7"}),
            ResponseCache::Key("g", 1, "subgraph", {"7"}));
  EXPECT_NE(ResponseCache::Key("g", 0, "subgraph", {"7"}),
            ResponseCache::Key("g", 0, "subgraph", {"8"}));
  EXPECT_NE(ResponseCache::Key("g", 0, "subgraph", {"a", "b"}),
            ResponseCache::Key("g", 0, "subgraph", {"ab"}));
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

TEST(GraphRegistryTest, AddGetDefaultAndNamed) {
  GraphRegistry registry;
  LIPSTICK_ASSERT_OK(registry.AddGraph("one", BuildDealershipGraph()));
  LIPSTICK_ASSERT_OK(registry.AddGraph("two", BuildDealershipGraph()));
  EXPECT_FALSE(registry.AddGraph("one", BuildDealershipGraph()).ok());

  Result<std::shared_ptr<const LoadedGraph>> by_default = registry.Get("");
  LIPSTICK_ASSERT_OK(by_default.status());
  EXPECT_EQ((*by_default)->name, "one");  // first registered = default
  LIPSTICK_EXPECT_OK(registry.Get("two").status());
  EXPECT_EQ(registry.Get("three").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(GraphRegistryTest, InMemoryGraphCannotReload) {
  GraphRegistry registry;
  LIPSTICK_ASSERT_OK(registry.AddGraph("mem", BuildDealershipGraph()));
  EXPECT_EQ(registry.Reload("mem").code(),
            StatusCode::kExecutionError);
}

TEST(GraphRegistryTest, ReloadBumpsEpochAndKeepsOldSnapshotAlive) {
  std::string path =
      StrCat(::testing::TempDir(), "service_registry_reload.pg");
  ProvenanceGraph graph = BuildDealershipGraph();
  LIPSTICK_ASSERT_OK(SaveGraphToFile(graph, path));

  GraphRegistry registry;
  LIPSTICK_ASSERT_OK(registry.LoadFile("g", path));
  Result<std::shared_ptr<const LoadedGraph>> before = registry.Get("g");
  LIPSTICK_ASSERT_OK(before.status());
  EXPECT_EQ((*before)->epoch, 0u);

  LIPSTICK_ASSERT_OK(registry.Reload("g"));
  Result<std::shared_ptr<const LoadedGraph>> after = registry.Get("g");
  LIPSTICK_ASSERT_OK(after.status());
  EXPECT_EQ((*after)->epoch, 1u);
  EXPECT_NE(before->get(), after->get());

  // The pre-reload shared_ptr still reads valid data: hot swap never
  // invalidates in-flight requests.
  Result<std::string> old_stats = service::ExecuteReadQuery(
      (*before)->snapshot, "stats", {}, /*threads=*/1);
  LIPSTICK_ASSERT_OK(old_stats.status());
  Result<std::string> new_stats = service::ExecuteReadQuery(
      (*after)->snapshot, "stats", {}, /*threads=*/1);
  LIPSTICK_ASSERT_OK(new_stats.status());
  EXPECT_EQ(*old_stats, *new_stats);  // same file, same contents
  ::unlink(path.c_str());
}

// ---------------------------------------------------------------------
// Server, end to end over real sockets
// ---------------------------------------------------------------------

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().Reset();
    ProvenanceGraph graph = BuildDealershipGraph();
    graph.ForEachAliveNode([this](NodeId id) { ids_.push_back(id); });
    ASSERT_GE(ids_.size(), 2u);
    LIPSTICK_ASSERT_OK(registry_.AddGraph("dealers", std::move(graph)));
  }
  void TearDown() override { FaultInjector::Global().Reset(); }

  /// Boots a server on an ephemeral port and returns a connected client.
  ServiceClient StartAndConnect(ServerOptions options = {}) {
    options.port = 0;
    server_ = std::make_unique<Server>(&registry_, options);
    Status st = server_->Start();
    EXPECT_TRUE(st.ok()) << st.ToString();
    Result<ServiceClient> client =
        ServiceClient::ConnectHostPort("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  GraphRegistry registry_;
  std::unique_ptr<Server> server_;
  std::vector<NodeId> ids_;
};

TEST_F(ServerTest, RemoteOutputMatchesLocalForEveryOp) {
  ServiceClient client = StartAndConnect();
  Result<std::shared_ptr<const LoadedGraph>> loaded = registry_.Get("");
  LIPSTICK_ASSERT_OK(loaded.status());

  std::string id0 = StrCat(ids_[0]);
  std::string id1 = StrCat(ids_[1]);
  const std::vector<std::pair<std::string, std::vector<std::string>>> cases =
      {{"stats", {}},
       {"find", {"--label", "token"}},
       {"expr", {id1}},
       {"depends", {id1, id0}},
       {"subgraph", {id0}},
       {"zoomout", {"dealer"}}};
  for (const auto& [op, args] : cases) {
    Result<std::string> local = service::ExecuteReadQuery(
        (*loaded)->snapshot, op, args, /*threads=*/1);
    LIPSTICK_ASSERT_OK(local.status());
    Result<std::string> remote = client.Query(op, args);
    LIPSTICK_ASSERT_OK(remote.status());
    EXPECT_EQ(*local, *remote) << "op=" << op;
  }
}

TEST_F(ServerTest, ErrorEnvelopeCarriesCodes) {
  ServiceClient client = StartAndConnect();
  Result<std::string> unknown = client.Query("frobnicate", {});
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);

  Result<std::string> bad_graph = client.Query("stats", {}, "nope");
  ASSERT_FALSE(bad_graph.ok());
  EXPECT_EQ(bad_graph.status().code(), StatusCode::kNotFound);

  Result<std::string> bad_args = client.Query("expr", {"not-a-node"});
  ASSERT_FALSE(bad_args.ok());
  EXPECT_EQ(bad_args.status().code(), StatusCode::kInvalidArgument);

  // Raw malformed request: not JSON at all.
  Result<std::string> raw = client.Call("this is not json");
  LIPSTICK_ASSERT_OK(raw.status());
  Result<obs::JsonValue> doc = obs::ParseJson(*raw);
  LIPSTICK_ASSERT_OK(doc.status());
  Result<std::string> parsed = service::ResponseToResult(*doc);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
}

TEST_F(ServerTest, AdminOps) {
  ServiceClient client = StartAndConnect();
  Result<std::string> pong = client.Query("ping", {});
  LIPSTICK_ASSERT_OK(pong.status());
  EXPECT_EQ(*pong, "pong\n");

  Result<std::string> graphs = client.Query("graphs", {});
  LIPSTICK_ASSERT_OK(graphs.status());
  EXPECT_NE(graphs->find("dealers"), std::string::npos);
  EXPECT_NE(graphs->find("(default)"), std::string::npos);

  Result<std::string> metricz = client.Query("metricz", {});
  LIPSTICK_ASSERT_OK(metricz.status());
  Result<obs::JsonValue> doc = obs::ParseJson(*metricz);
  LIPSTICK_ASSERT_OK(doc.status());
  const obs::JsonValue* svc = doc->Find("service");
  ASSERT_NE(svc, nullptr);
  const obs::JsonValue* reqs = svc->Find("requests");
  ASSERT_NE(reqs, nullptr);
  EXPECT_GE(reqs->number(), 2.0);  // ping + graphs at least

  // In-memory graphs cannot reload; the error propagates over the wire.
  Result<std::string> reload = client.Query("reload", {"dealers"});
  ASSERT_FALSE(reload.ok());
  EXPECT_EQ(reload.status().code(), StatusCode::kExecutionError);
}

TEST_F(ServerTest, CacheServesRepeatedViewQueries) {
  ServerOptions options;
  options.cache_entries = 8;
  ServiceClient client = StartAndConnect(options);
  std::string id0 = StrCat(ids_[0]);
  Result<std::string> first = client.Query("subgraph", {id0});
  LIPSTICK_ASSERT_OK(first.status());
  Result<std::string> second = client.Query("subgraph", {id0});
  LIPSTICK_ASSERT_OK(second.status());
  EXPECT_EQ(*first, *second);
  Server::StatsSnapshot stats = server_->Stats();
  EXPECT_GE(stats.cache_hits, 1u);
  EXPECT_GE(stats.cache_misses, 1u);
}

TEST_F(ServerTest, EquivalentPlansShareOneCacheEntry) {
  // The response cache keys on canonical plan strings, so syntactically
  // different but equivalent requests hit the same entry.
  ServerOptions options;
  options.cache_entries = 8;
  ServiceClient client = StartAndConnect(options);
  Result<std::string> first =
      client.Query("zoomout", {"dealer", "aggregate"});
  LIPSTICK_ASSERT_OK(first.status());
  Result<std::string> second =
      client.Query("zoomout", {"aggregate", "dealer"});
  LIPSTICK_ASSERT_OK(second.status());
  EXPECT_EQ(*first, *second);
  Server::StatsSnapshot stats = server_->Stats();
  EXPECT_GE(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
}

TEST_F(ServerTest, PipelineQueriesRunThroughThePlanEngine) {
  ServerOptions options;
  options.cache_entries = 8;
  ServiceClient client = StartAndConnect(options);
  Result<std::shared_ptr<const LoadedGraph>> loaded = registry_.Get("");
  LIPSTICK_ASSERT_OK(loaded.status());

  // A pipeline travels whole in the op field and renders identically to a
  // local plan execution.
  const std::string pipeline = "zoomout dealer | stats";
  Result<std::string> local = service::ExecuteReadQuery(
      (*loaded)->snapshot, pipeline, {}, /*threads=*/1);
  LIPSTICK_ASSERT_OK(local.status());
  Result<std::string> remote = client.Query(pipeline, {});
  LIPSTICK_ASSERT_OK(remote.status());
  EXPECT_EQ(*local, *remote);

  // The first pipeline missed the composed-view cache; a second pipeline
  // sharing the zoomout prefix hits it.
  Server::StatsSnapshot before = server_->Stats();
  EXPECT_GE(before.plan_cache_misses, 1u);
  EXPECT_GE(before.plan_cache_entries, 1u);
  Result<std::string> extended =
      client.Query("zoomout dealer | find --label token", {});
  LIPSTICK_ASSERT_OK(extended.status());
  Server::StatsSnapshot after = server_->Stats();
  EXPECT_GE(after.plan_cache_hits, before.plan_cache_hits + 1);
}

TEST_F(ServerTest, MetriczExposesPlanCacheCounters) {
  ServerOptions options;
  options.cache_entries = 8;
  ServiceClient client = StartAndConnect(options);
  Result<std::string> warm = client.Query("zoomout dealer | stats", {});
  LIPSTICK_ASSERT_OK(warm.status());
  Result<std::string> again = client.Query("zoomout dealer | stats", {});
  LIPSTICK_ASSERT_OK(again.status());

  Result<std::string> metricz = client.Query("metricz", {});
  LIPSTICK_ASSERT_OK(metricz.status());
  Result<obs::JsonValue> doc = obs::ParseJson(*metricz);
  LIPSTICK_ASSERT_OK(doc.status());
  const obs::JsonValue* svc = doc->Find("service");
  ASSERT_NE(svc, nullptr);
  const obs::JsonValue* plan_cache = svc->Find("plan_cache");
  ASSERT_NE(plan_cache, nullptr);
  const obs::JsonValue* hits = plan_cache->Find("hits");
  const obs::JsonValue* misses = plan_cache->Find("misses");
  const obs::JsonValue* entries = plan_cache->Find("entries");
  ASSERT_NE(hits, nullptr);
  ASSERT_NE(misses, nullptr);
  ASSERT_NE(entries, nullptr);
  Server::StatsSnapshot stats = server_->Stats();
  EXPECT_EQ(static_cast<uint64_t>(hits->number()), stats.plan_cache_hits);
  EXPECT_EQ(static_cast<uint64_t>(misses->number()),
            stats.plan_cache_misses);
  EXPECT_EQ(static_cast<uint64_t>(entries->number()),
            stats.plan_cache_entries);
  EXPECT_GE(stats.plan_cache_misses, 1u);
}

TEST_F(ServerTest, ExplainRunsRemotely) {
  ServiceClient client = StartAndConnect();
  Result<std::string> text = client.Query("explain", {"stats"});
  LIPSTICK_ASSERT_OK(text.status());
  EXPECT_EQ(text->rfind("plan: explain stats\n", 0), 0u) << *text;
  EXPECT_NE(text->find("operators:"), std::string::npos);
}

TEST_F(ServerTest, DeadlineExceededUnderInjectedLatency) {
  ServiceClient client = StartAndConnect();
  // A delay-only fault on the execution path makes every query take
  // >=80ms; a 20ms deadline must then fail deterministically.
  FaultInjector::FaultSpec spec;
  spec.point = service::kFaultExec;
  spec.fail = false;
  spec.delay_ms = 80;
  FaultInjector::Global().Arm(spec);
  Result<std::string> slow =
      client.Query("stats", {}, /*graph=*/"", /*deadline_ms=*/20);
  ASSERT_FALSE(slow.ok());
  EXPECT_EQ(slow.status().code(), StatusCode::kDeadlineExceeded);
  FaultInjector::Global().Reset();
  // Without the fault the same deadline is plenty.
  LIPSTICK_EXPECT_OK(client.Query("stats", {}, "", 2000).status());
}

TEST_F(ServerTest, AdmissionControlRejectsWhenQueueFull) {
  ServerOptions options;
  options.workers = 1;
  options.queue_depth = 1;
  ServiceClient c1 = StartAndConnect(options);
  Result<ServiceClient> c2 =
      ServiceClient::ConnectHostPort("127.0.0.1", server_->port());
  Result<ServiceClient> c3 =
      ServiceClient::ConnectHostPort("127.0.0.1", server_->port());
  LIPSTICK_ASSERT_OK(c2.status());
  LIPSTICK_ASSERT_OK(c3.status());

  // Every query stalls 300ms in the single worker; with a queue depth of
  // one, the third concurrent request finds worker busy + queue full.
  FaultInjector::FaultSpec spec;
  spec.point = service::kFaultExec;
  spec.fail = false;
  spec.delay_ms = 300;
  FaultInjector::Global().Arm(spec);

  std::thread t1([&c1] { (void)c1.Query("stats", {}); });
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  std::thread t2([&c2] { (void)c2->Query("stats", {}); });
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  Result<std::string> rejected = c3->Query("stats", {});
  t1.join();
  t2.join();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  EXPECT_GE(server_->Stats().overloaded, 1u);
}

TEST_F(ServerTest, ConcurrentClientsGetConsistentAnswers) {
  ServerOptions options;
  options.workers = 4;
  ServiceClient seed_client = StartAndConnect(options);
  Result<std::string> expected = seed_client.Query("stats", {});
  LIPSTICK_ASSERT_OK(expected.status());

  constexpr int kClients = 8;
  constexpr int kQueriesEach = 10;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([this, &expected, &mismatches, &failures] {
      Result<ServiceClient> client =
          ServiceClient::ConnectHostPort("127.0.0.1", server_->port());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int q = 0; q < kQueriesEach; ++q) {
        Result<std::string> got = client->Query("stats", {});
        if (!got.ok()) {
          failures.fetch_add(1);
        } else if (*got != *expected) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GE(server_->Stats().requests,
            static_cast<uint64_t>(kClients * kQueriesEach));
}

TEST_F(ServerTest, HotReloadUnderConcurrentQueries) {
  std::string path = StrCat(::testing::TempDir(), "service_hot_reload.pg");
  {
    ProvenanceGraph graph = BuildDealershipGraph();
    LIPSTICK_ASSERT_OK(SaveGraphToFile(graph, path));
  }
  LIPSTICK_ASSERT_OK(registry_.LoadFile("ondisk", path));
  ServiceClient client = StartAndConnect();

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread reader([this, &stop, &failures] {
    Result<ServiceClient> c =
        ServiceClient::ConnectHostPort("127.0.0.1", server_->port());
    if (!c.ok()) {
      failures.fetch_add(1);
      return;
    }
    while (!stop.load()) {
      if (!c->Query("stats", {}, "ondisk").ok()) failures.fetch_add(1);
    }
  });
  for (int i = 0; i < 5; ++i) {
    Result<std::string> reloaded = client.Query("reload", {"ondisk"});
    LIPSTICK_EXPECT_OK(reloaded.status());
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(failures.load(), 0);
  Result<std::shared_ptr<const LoadedGraph>> final_graph =
      registry_.Get("ondisk");
  LIPSTICK_ASSERT_OK(final_graph.status());
  EXPECT_EQ((*final_graph)->epoch, 5u);
  ::unlink(path.c_str());
}

TEST_F(ServerTest, SurvivesInjectedSocketFaults) {
  ServiceClient seed_client = StartAndConnect();
  // Fire read faults with 30% probability process-wide (both sides of the
  // connection consult the same injector); every request must either
  // succeed or fail cleanly, and fresh connections must keep working.
  FaultInjector::FaultSpec spec;
  spec.point = service::kFaultRead;
  spec.probability = 0.3;
  spec.code = StatusCode::kIOError;
  FaultInjector::Global().Arm(spec);
  int successes = 0;
  for (int i = 0; i < 20; ++i) {
    Result<ServiceClient> client =
        ServiceClient::ConnectHostPort("127.0.0.1", server_->port());
    if (!client.ok()) continue;
    if (client->Query("ping", {}).ok()) ++successes;
  }
  FaultInjector::Global().Reset();
  EXPECT_GE(successes, 1);
  // The server is still healthy afterwards.
  Result<ServiceClient> after =
      ServiceClient::ConnectHostPort("127.0.0.1", server_->port());
  LIPSTICK_ASSERT_OK(after.status());
  LIPSTICK_EXPECT_OK(after->Query("ping", {}).status());
}

TEST_F(ServerTest, GracefulShutdownDrainsAndRefusesNewWork) {
  ServiceClient client = StartAndConnect();
  LIPSTICK_EXPECT_OK(client.Query("ping", {}).status());
  server_->Shutdown();
  // Existing connection: the read side was shut, requests now fail.
  EXPECT_FALSE(client.Query("ping", {}).ok());
  // New connections are refused outright.
  EXPECT_FALSE(
      ServiceClient::ConnectHostPort("127.0.0.1", server_->port()).ok());
  // Idempotent.
  server_->Shutdown();
}

}  // namespace
}  // namespace lipstick

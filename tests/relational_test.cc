#include <gtest/gtest.h>

#include "relational/schema.h"
#include "relational/value.h"
#include "test_util.h"

namespace lipstick {
namespace {

using ::lipstick::testing::B;
using ::lipstick::testing::D;
using ::lipstick::testing::I;
using ::lipstick::testing::S;
using ::lipstick::testing::T;

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(B(true).bool_value());
  EXPECT_EQ(I(42).int_value(), 42);
  EXPECT_DOUBLE_EQ(D(2.5).double_value(), 2.5);
  EXPECT_EQ(S("hi").string_value(), "hi");
  EXPECT_TRUE(I(1).is_numeric());
  EXPECT_TRUE(D(1).is_numeric());
  EXPECT_FALSE(S("1").is_numeric());
}

TEST(ValueTest, IntDoubleCompareNumerically) {
  EXPECT_TRUE(I(2).Equals(D(2.0)));
  EXPECT_LT(I(1).Compare(D(1.5)), 0);
  EXPECT_GT(D(3.0).Compare(I(2)), 0);
}

TEST(ValueTest, EqualValuesHashEqual) {
  EXPECT_EQ(I(7).Hash(), D(7.0).Hash());
  EXPECT_EQ(S("abc").Hash(), S("abc").Hash());
  EXPECT_EQ(Value::Null().Hash(), Value::Null().Hash());
}

TEST(ValueTest, CrossKindTotalOrder) {
  // null < bool < numeric < string < tuple < bag, transitive and stable.
  std::vector<Value> ordered{Value::Null(), B(false), I(0), S(""),
                             Value::OfTuple(std::make_shared<Tuple>()),
                             Value::OfBag(std::make_shared<Bag>())};
  for (size_t i = 0; i < ordered.size(); ++i) {
    for (size_t j = 0; j < ordered.size(); ++j) {
      int c = ordered[i].Compare(ordered[j]);
      if (i < j) {
        EXPECT_LT(c, 0) << i << " vs " << j;
      } else if (i == j) {
        EXPECT_EQ(c, 0);
      } else {
        EXPECT_GT(c, 0);
      }
    }
  }
}

TEST(ValueTest, BagComparisonIsOrderInsensitive) {
  auto bag1 = std::make_shared<Bag>();
  bag1->Add(T({I(1)}));
  bag1->Add(T({I(2)}));
  auto bag2 = std::make_shared<Bag>();
  bag2->Add(T({I(2)}));
  bag2->Add(T({I(1)}));
  EXPECT_TRUE(Value::OfBag(bag1).Equals(Value::OfBag(bag2)));
  EXPECT_EQ(Value::OfBag(bag1).Hash(), Value::OfBag(bag2).Hash());
}

TEST(ValueTest, BagMultisetSemantics) {
  auto one = std::make_shared<Bag>();
  one->Add(T({I(1)}));
  auto two = std::make_shared<Bag>();
  two->Add(T({I(1)}));
  two->Add(T({I(1)}));
  EXPECT_FALSE(Value::OfBag(one).Equals(Value::OfBag(two)));
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Null().ToString(), "null");
  EXPECT_EQ(B(true).ToString(), "true");
  EXPECT_EQ(I(-3).ToString(), "-3");
  EXPECT_EQ(S("x").ToString(), "'x'");
  EXPECT_EQ(T({I(1), S("a")}).ToString(), "(1,'a')");
}

TEST(TupleTest, CompareLexicographic) {
  EXPECT_LT(T({I(1), I(2)}).Compare(T({I(1), I(3)})), 0);
  EXPECT_LT(T({I(1)}).Compare(T({I(1), I(0)})), 0);  // prefix is smaller
  EXPECT_EQ(T({S("a")}).Compare(T({S("a")})), 0);
}

TEST(BagTest, ContentEqualsIgnoresOrderAndAnnotations) {
  Bag a, b;
  a.Add(T({I(1)}), 100);
  a.Add(T({I(2)}), 101);
  b.Add(T({I(2)}), 999);
  b.Add(T({I(1)}), 998);
  EXPECT_TRUE(a.ContentEquals(b));
  b.Add(T({I(1)}));
  EXPECT_FALSE(a.ContentEquals(b));
}

TEST(BagTest, ToStringIsDeterministic) {
  Bag a, b;
  a.Add(T({I(2)}));
  a.Add(T({I(1)}));
  b.Add(T({I(1)}));
  b.Add(T({I(2)}));
  EXPECT_EQ(a.ToString(), b.ToString());
  EXPECT_EQ(a.ToString(), "{(1),(2)}");
}

TEST(SchemaTest, FindByExactName) {
  SchemaPtr s = testing::MakeSchema(
      {{"CarId", FieldType::Int()}, {"Model", FieldType::String()}});
  EXPECT_EQ(s->FindField("Model").value(), 1u);
  EXPECT_FALSE(s->FindField("Price").has_value());
}

TEST(SchemaTest, QualifiedSuffixResolution) {
  SchemaPtr s = testing::MakeSchema({{"Cars::CarId", FieldType::Int()},
                                     {"Cars::Model", FieldType::String()},
                                     {"Req::Model", FieldType::String()}});
  // "CarId" resolves through the unique suffix; "Model" is ambiguous.
  EXPECT_EQ(s->FindField("CarId").value(), 0u);
  EXPECT_FALSE(s->FindField("Model").has_value());
  EXPECT_EQ(s->FindField("Cars::Model").value(), 1u);
  // ResolveField reports the ambiguity as an error.
  EXPECT_FALSE(s->ResolveField("Model").ok());
}

TEST(SchemaTest, NestedSuffixResolution) {
  SchemaPtr s = testing::MakeSchema({{"A::B::Amount", FieldType::Double()}});
  EXPECT_EQ(s->FindField("Amount").value(), 0u);
  EXPECT_EQ(s->FindField("B::Amount").value(), 0u);
}

TEST(SchemaTest, EqualsAndIgnoreNames) {
  SchemaPtr a = testing::MakeSchema(
      {{"x", FieldType::Int()}, {"y", FieldType::String()}});
  SchemaPtr b = testing::MakeSchema(
      {{"u", FieldType::Int()}, {"v", FieldType::String()}});
  EXPECT_FALSE(a->Equals(*b));
  EXPECT_TRUE(a->EqualsIgnoreNames(*b));
  SchemaPtr c = testing::MakeSchema({{"x", FieldType::Int()}});
  EXPECT_FALSE(a->EqualsIgnoreNames(*c));
}

TEST(SchemaTest, NestedTypes) {
  SchemaPtr inner = testing::MakeSchema({{"v", FieldType::Double()}});
  FieldType bag = FieldType::Bag(inner);
  FieldType tup = FieldType::Tuple(inner);
  EXPECT_FALSE(bag.is_scalar());
  EXPECT_FALSE(bag.Equals(tup));
  EXPECT_TRUE(bag.Equals(FieldType::Bag(inner)));
  // Bags of different element schemas differ.
  SchemaPtr other = testing::MakeSchema({{"v", FieldType::Int()}});
  EXPECT_FALSE(bag.Equals(FieldType::Bag(other)));
}

TEST(SchemaTest, ToStringMentionsFields) {
  SchemaPtr s = testing::MakeSchema({{"a", FieldType::Int()}});
  EXPECT_EQ(s->ToString(), "(a:int)");
}

}  // namespace
}  // namespace lipstick

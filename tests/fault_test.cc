#include "common/fault.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "provenance/query.h"
#include "test_util.h"
#include "workflow/executor.h"
#include "workflow/module.h"
#include "workflow/workflow.h"

namespace lipstick {
namespace {

using ::lipstick::testing::I;
using ::lipstick::testing::MakeSchema;
using ::lipstick::testing::T;

SchemaPtr NumSchema() { return MakeSchema({{"x", FieldType::Int()}}); }

/// Every test starts and ends with a disarmed global injector, so tests
/// never leak faults into each other.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

/// ------------------------- injector mechanics ---------------------------

TEST_F(FaultTest, DisarmedFireIsOkAndCheap) {
  EXPECT_FALSE(FaultInjector::Armed());
  LIPSTICK_EXPECT_OK(FaultInjector::Fire("anything", "any-key"));
}

TEST_F(FaultTest, SkipHitsAndMaxFires) {
  FaultInjector::FaultSpec spec;
  spec.point = "test.point";
  spec.skip_hits = 2;
  spec.max_fires = 1;
  spec.code = StatusCode::kInternal;
  FaultInjector::Global().Arm(spec);

  LIPSTICK_EXPECT_OK(FaultInjector::Fire("test.point"));  // hit 1: skipped
  LIPSTICK_EXPECT_OK(FaultInjector::Fire("test.point"));  // hit 2: skipped
  Status st = FaultInjector::Fire("test.point");          // hit 3: fires
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  LIPSTICK_EXPECT_OK(FaultInjector::Fire("test.point"));  // budget spent
  EXPECT_EQ(FaultInjector::Global().fire_count("test.point"), 1u);
  EXPECT_EQ(FaultInjector::Global().hit_count("test.point"), 4u);
  // Other points and non-matching keys are unaffected.
  LIPSTICK_EXPECT_OK(FaultInjector::Fire("other.point"));
}

TEST_F(FaultTest, KeyedFaultMatchesOnlyItsKey) {
  FaultInjector::FaultSpec spec;
  spec.point = "test.point";
  spec.key = "alpha";
  FaultInjector::Global().Arm(spec);
  LIPSTICK_EXPECT_OK(FaultInjector::Fire("test.point", "beta"));
  EXPECT_FALSE(FaultInjector::Fire("test.point", "alpha").ok());
}

TEST_F(FaultTest, ProbabilisticFiringIsDeterministic) {
  auto run = [] {
    FaultInjector::Global().Reset();
    FaultInjector::FaultSpec spec;
    spec.point = "test.point";
    spec.probability = 0.5;
    spec.seed = 42;
    FaultInjector::Global().Arm(spec);
    std::string pattern;
    for (int i = 0; i < 32; ++i) {
      pattern += FaultInjector::Fire("test.point").ok() ? '.' : 'X';
    }
    return pattern;
  };
  std::string first = run();
  std::string second = run();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find('X'), std::string::npos);
  EXPECT_NE(first.find('.'), std::string::npos);
}

TEST_F(FaultTest, ArmFromEnvParsesSpec) {
  ::setenv("LIPSTICK_FAULTS", "pig.udf@triple:code=internal:fires=1", 1);
  LIPSTICK_ASSERT_OK(FaultInjector::Global().ArmFromEnv());
  ::unsetenv("LIPSTICK_FAULTS");
  Status st = FaultInjector::Fire("pig.udf", "triple");
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  LIPSTICK_EXPECT_OK(FaultInjector::Fire("pig.udf", "triple"));  // fires=1

  ::setenv("LIPSTICK_FAULTS", "point:bogus_option=1", 1);
  EXPECT_FALSE(FaultInjector::Global().ArmFromEnv().ok());
  ::unsetenv("LIPSTICK_FAULTS");
}

/// --------------------------- workflow fixtures --------------------------

Result<ModuleSpec> SourceModule() {
  return MakeModule("source", {{"Ext", NumSchema()}}, {},
                    {{"Out", NumSchema()}}, "",
                    "Out = FOREACH Ext GENERATE x;");
}

Result<ModuleSpec> DoublerModule() {
  return MakeModule("doubler", {{"In", NumSchema()}}, {},
                    {{"Out", NumSchema()}}, "",
                    "Out = FOREACH In GENERATE x * 2 AS x;");
}

Result<ModuleSpec> AccumulatorModule() {
  return MakeModule("accumulator", {{"In", NumSchema()}},
                    {{"Seen", NumSchema()}},
                    {{"Total", MakeSchema({{"t", FieldType::Int()}})}},
                    "Seen = UNION Seen, In;\n",
                    "G = GROUP Seen ALL;\n"
                    "Total = FOREACH G GENERATE SUM(Seen.x) AS t;\n");
}

void AddModuleOrDie(Workflow* w, Result<ModuleSpec> spec) {
  LIPSTICK_ASSERT_OK(spec.status());
  LIPSTICK_ASSERT_OK(w->AddModule(std::move(*spec)));
}

/// in -> a -> b chain of doublers.
void BuildChain(Workflow* w) {
  AddModuleOrDie(w, SourceModule());
  AddModuleOrDie(w, DoublerModule());
  LIPSTICK_ASSERT_OK(w->AddNode("in", "source"));
  LIPSTICK_ASSERT_OK(w->AddNode("a", "doubler"));
  LIPSTICK_ASSERT_OK(w->AddNode("b", "doubler"));
  LIPSTICK_ASSERT_OK(w->AddEdge("in", "a", {EdgeRelation{"Out", "In"}}));
  LIPSTICK_ASSERT_OK(w->AddEdge("a", "b", {EdgeRelation{"Out", "In"}}));
}

/// Diamond: in -> {a, b} -> m.
void BuildDiamond(Workflow* w) {
  AddModuleOrDie(w, SourceModule());
  AddModuleOrDie(w, DoublerModule());
  AddModuleOrDie(w, MakeModule("merge",
                               {{"A", NumSchema()}, {"B", NumSchema()}}, {},
                               {{"Out", NumSchema()}}, "",
                               "Out = UNION A, B;"));
  LIPSTICK_ASSERT_OK(w->AddNode("in", "source"));
  LIPSTICK_ASSERT_OK(w->AddNode("a", "doubler"));
  LIPSTICK_ASSERT_OK(w->AddNode("b", "doubler"));
  LIPSTICK_ASSERT_OK(w->AddNode("m", "merge"));
  LIPSTICK_ASSERT_OK(w->AddEdge("in", "a", {EdgeRelation{"Out", "In"}}));
  LIPSTICK_ASSERT_OK(w->AddEdge("in", "b", {EdgeRelation{"Out", "In"}}));
  LIPSTICK_ASSERT_OK(w->AddEdge("a", "m", {EdgeRelation{"Out", "A"}}));
  LIPSTICK_ASSERT_OK(w->AddEdge("b", "m", {EdgeRelation{"Out", "B"}}));
}

WorkflowInputs ChainInputs(std::vector<int64_t> xs) {
  WorkflowInputs inputs;
  Bag ext;
  for (int64_t x : xs) ext.Add(T({I(x)}));
  inputs["in"]["Ext"] = std::move(ext);
  return inputs;
}

/// ------------------------ engine failure points -------------------------

TEST_F(FaultTest, InjectedUdfFailurePropagatesWithContext) {
  pig::UdfRegistry udfs;
  LIPSTICK_ASSERT_OK(udfs.Register(
      "TRIPLE",
      [](const std::vector<Value>& args) -> Result<Value> {
        return Value::Int(args.at(0).int_value() * 3);
      },
      FieldType::Int()));
  Workflow w;
  AddModuleOrDie(&w, SourceModule());
  AddModuleOrDie(&w,
                 MakeModule("tripler", {{"In", NumSchema()}}, {},
                            {{"Out", NumSchema()}}, "",
                            "Out = FOREACH In GENERATE TRIPLE(x) AS x;"));
  LIPSTICK_ASSERT_OK(w.AddNode("in", "source"));
  LIPSTICK_ASSERT_OK(w.AddNode("t", "tripler"));
  LIPSTICK_ASSERT_OK(w.AddEdge("in", "t", {EdgeRelation{"Out", "In"}}));
  WorkflowExecutor exec(&w, &udfs);
  LIPSTICK_ASSERT_OK(exec.Initialize());

  FaultInjector::FaultSpec spec;
  spec.point = "pig.udf";
  spec.key = "triple";  // keys are lower-cased function names
  FaultInjector::Global().Arm(spec);

  auto outputs = exec.Execute(ChainInputs({1}), nullptr);
  ASSERT_FALSE(outputs.ok());
  EXPECT_EQ(outputs.status().code(), StatusCode::kUnavailable);
  // The error names the UDF and the failing node on the way up.
  EXPECT_NE(outputs.status().message().find("TRIPLE"), std::string::npos);
  EXPECT_NE(outputs.status().message().find("node t"), std::string::npos);
  EXPECT_EQ(exec.executions_run(), 0u);  // aborted, not committed

  // Disarmed, the same execution succeeds.
  FaultInjector::Global().Reset();
  auto ok = exec.Execute(ChainInputs({1}), nullptr);
  LIPSTICK_ASSERT_OK(ok.status());
  EXPECT_EQ(ok->at("t").at("Out").bag.ToString(), "{(3)}");
  EXPECT_EQ(exec.executions_run(), 1u);
}

TEST_F(FaultTest, RetryUntilSuccessDiscardsFailedProvenance) {
  Workflow w;
  BuildChain(&w);
  WorkflowExecutor exec(&w, nullptr);
  LIPSTICK_ASSERT_OK(exec.Initialize());

  // The source node's only statement binds "Out"; fail it twice, so the
  // first two attempts die inside the interpreter (after an invocation
  // record and some graph nodes exist) and the third succeeds.
  FaultInjector::FaultSpec spec;
  spec.point = "pig.statement";
  spec.key = "Out";
  spec.max_fires = 2;
  FaultInjector::Global().Arm(spec);

  ExecutionOptions options;
  options.retry.max_attempts = 3;
  options.retry.initial_backoff_ms = 0.5;
  options.retry.jitter = 0.5;
  ExecutionReport report;
  ProvenanceGraph graph;
  auto outputs = exec.Execute(ChainInputs({5, 7}), &graph, options, &report);
  LIPSTICK_ASSERT_OK(outputs.status());
  EXPECT_EQ(outputs->at("b").at("Out").bag.ToString(), "{(20),(28)}");

  EXPECT_EQ(report.nodes.at("in").attempts, 3);
  LIPSTICK_EXPECT_OK(report.nodes.at("in").status);
  EXPECT_EQ(report.nodes.at("a").attempts, 1);
  EXPECT_TRUE(report.all_ok());
  EXPECT_EQ(exec.executions_run(), 1u);

  // The two failed attempts left aborted invocation records but no live
  // graph structure; the merged graph seals and queries cleanly.
  EXPECT_EQ(graph.invocations().size(), 5u);  // 3 live + 2 aborted
  EXPECT_EQ(graph.num_live_invocations(), 3u);
  graph.Seal();
  GraphStats stats = *ComputeGraphStats(graph);
  EXPECT_EQ(stats.invocations, 3u);
  for (NodeId id : graph.AllNodeIds()) {
    if (!graph.Contains(id)) continue;
    for (NodeId p : graph.ParentsOf(id)) {
      EXPECT_TRUE(graph.Contains(p)) << "live node with dead parent";
    }
  }
}

TEST_F(FaultTest, NodeTimeoutReportsDeadlineExceeded) {
  Workflow w;
  AddModuleOrDie(&w, SourceModule());
  AddModuleOrDie(&w, AccumulatorModule());
  LIPSTICK_ASSERT_OK(w.AddNode("in", "source"));
  LIPSTICK_ASSERT_OK(w.AddNode("acc", "accumulator"));
  LIPSTICK_ASSERT_OK(w.AddEdge("in", "acc", {EdgeRelation{"Out", "In"}}));
  WorkflowExecutor exec(&w, nullptr);
  LIPSTICK_ASSERT_OK(exec.Initialize());

  // A delay-only fault (fail = false) slows every statement of the
  // accumulator node by 30 ms; with a 10 ms budget the cooperative check
  // between statements trips.
  FaultInjector::FaultSpec spec;
  spec.point = "pig.statement";
  spec.key = "Seen";
  spec.fail = false;
  spec.delay_ms = 30;
  FaultInjector::Global().Arm(spec);

  ExecutionOptions options;
  options.node_timeout_seconds = 0.01;
  ExecutionReport report;
  auto outputs = exec.Execute(ChainInputs({1}), nullptr, options, &report);
  ASSERT_FALSE(outputs.ok());
  EXPECT_EQ(outputs.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(report.nodes.at("acc").status.code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(exec.executions_run(), 0u);

  // The state transaction held: nothing from the timed-out Qstate sticks.
  auto state = exec.GetState("acc", "Seen");
  LIPSTICK_ASSERT_OK(state.status());
  EXPECT_TRUE((*state)->bag.empty());
}

TEST_F(FaultTest, SkipDownstreamKeepsIndependentBranch) {
  for (int workers : {1, 4}) {
    SCOPED_TRACE(workers);
    FaultInjector::Global().Reset();

    // Fault-free reference run for the surviving branch.
    Workflow w;
    BuildDiamond(&w);
    WorkflowExecutor clean(&w, nullptr);
    LIPSTICK_ASSERT_OK(clean.Initialize());
    auto reference = clean.Execute(ChainInputs({1, 2, 3}), nullptr, workers);
    LIPSTICK_ASSERT_OK(reference.status());

    FaultInjector::FaultSpec spec;
    spec.point = "executor.node";
    spec.key = "b";
    FaultInjector::Global().Arm(spec);

    WorkflowExecutor exec(&w, nullptr);
    LIPSTICK_ASSERT_OK(exec.Initialize());
    ExecutionOptions options;
    options.failure_policy = FailurePolicy::kSkipDownstream;
    ExecutionReport report;
    ProvenanceGraph graph;
    auto outputs = exec.Execute(ChainInputs({1, 2, 3}), &graph, options,
                                &report, workers);
    LIPSTICK_ASSERT_OK(outputs.status());

    // The independent branch produced exactly its fault-free outputs.
    EXPECT_EQ(outputs->at("a").at("Out").bag.ToString(),
              reference->at("a").at("Out").bag.ToString());
    EXPECT_EQ(outputs->count("b"), 0u);
    EXPECT_EQ(outputs->count("m"), 0u);

    EXPECT_EQ(report.nodes.at("b").attempts, 1);
    EXPECT_EQ(report.nodes.at("b").status.code(), StatusCode::kUnavailable);
    EXPECT_TRUE(report.nodes.at("m").skipped);
    EXPECT_EQ(report.nodes.at("m").skipped_because_of, "b");
    EXPECT_EQ(report.nodes.at("m").status.code(), StatusCode::kAborted);
    EXPECT_EQ(report.failed_count(), 1u);
    EXPECT_EQ(report.skipped_count(), 1u);
    EXPECT_FALSE(report.all_ok());

    // Partial executions still commit and still carry clean provenance
    // for what did run: in and a.
    EXPECT_EQ(exec.executions_run(), 1u);
    EXPECT_EQ(graph.num_live_invocations(), 2u);
    graph.Seal();
    for (NodeId id : graph.AllNodeIds()) {
      if (!graph.Contains(id)) continue;
      for (NodeId p : graph.ParentsOf(id)) {
        EXPECT_TRUE(graph.Contains(p)) << "live node with dead parent";
      }
    }
  }
}

TEST_F(FaultTest, BestEffortRunsEveryNode) {
  Workflow w;
  BuildDiamond(&w);
  WorkflowExecutor exec(&w, nullptr);
  LIPSTICK_ASSERT_OK(exec.Initialize());

  FaultInjector::FaultSpec spec;
  spec.point = "executor.node";
  spec.key = "b";
  FaultInjector::Global().Arm(spec);

  ExecutionOptions options;
  options.failure_policy = FailurePolicy::kBestEffort;
  ExecutionReport report;
  auto outputs = exec.Execute(ChainInputs({4}), nullptr, options, &report);
  LIPSTICK_ASSERT_OK(outputs.status());
  // m still runs, seeing only branch a's tuples on its dead B edge.
  EXPECT_EQ(outputs->at("m").at("Out").bag.ToString(), "{(8)}");
  EXPECT_EQ(report.nodes.at("m").attempts, 1);
  EXPECT_FALSE(report.nodes.at("m").skipped);
  EXPECT_EQ(report.failed_count(), 1u);
  EXPECT_EQ(report.skipped_count(), 0u);
}

TEST_F(FaultTest, FailFastRollsBackStateAndProvenance) {
  // in -> acc (stateful) -> relay; the relay fails after the accumulator
  // already committed new state within the execution.
  Workflow w;
  AddModuleOrDie(&w, SourceModule());
  AddModuleOrDie(&w, AccumulatorModule());
  AddModuleOrDie(&w,
                 MakeModule("relay",
                            {{"T", MakeSchema({{"t", FieldType::Int()}})}},
                            {}, {{"Out", NumSchema()}}, "",
                            "Out = FOREACH T GENERATE t AS x;"));
  LIPSTICK_ASSERT_OK(w.AddNode("in", "source"));
  LIPSTICK_ASSERT_OK(w.AddNode("acc", "accumulator"));
  LIPSTICK_ASSERT_OK(w.AddNode("end", "relay"));
  LIPSTICK_ASSERT_OK(w.AddEdge("in", "acc", {EdgeRelation{"Out", "In"}}));
  LIPSTICK_ASSERT_OK(w.AddEdge("acc", "end", {EdgeRelation{"Total", "T"}}));
  WorkflowExecutor exec(&w, nullptr);
  LIPSTICK_ASSERT_OK(exec.Initialize());

  // One committed execution to establish non-trivial prior state.
  ProvenanceGraph graph;
  LIPSTICK_ASSERT_OK(exec.Execute(ChainInputs({10}), &graph).status());
  size_t alive_before = graph.num_alive();
  size_t invocations_before = graph.invocations().size();

  FaultInjector::FaultSpec spec;
  spec.point = "executor.node";
  spec.key = "end";
  FaultInjector::Global().Arm(spec);

  ExecutionReport report;
  auto outputs = exec.Execute(ChainInputs({32}), &graph, ExecutionOptions(),
                              &report);
  ASSERT_FALSE(outputs.ok());
  EXPECT_EQ(outputs.status().code(), StatusCode::kUnavailable);

  // Everything observable is as if the failed execution never started:
  // the execution counter, the module state, and the provenance graph.
  EXPECT_EQ(exec.executions_run(), 1u);
  auto state = exec.GetState("acc", "Seen");
  LIPSTICK_ASSERT_OK(state.status());
  EXPECT_EQ((*state)->bag.ToString(), "{(10)}");
  EXPECT_EQ(graph.num_alive(), alive_before);
  EXPECT_EQ(graph.invocations().size(), invocations_before);

  // The report still tells the story of the aborted run.
  EXPECT_EQ(report.nodes.at("end").status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(report.nodes.at("acc").attempts, 1);

  // Disarm and rerun: the sequence continues exactly where it left off.
  FaultInjector::Global().Reset();
  auto ok = exec.Execute(ChainInputs({32}), &graph);
  LIPSTICK_ASSERT_OK(ok.status());
  EXPECT_EQ(ok->at("end").at("Out").bag.ToString(), "{(42)}");
  EXPECT_EQ(exec.executions_run(), 2u);
  graph.Seal();
  GraphStats stats = *ComputeGraphStats(graph);
  EXPECT_EQ(stats.invocations, 6u);  // 3 nodes x 2 committed executions
}

/// --------------------- always-on invariant checks -----------------------

TEST_F(FaultTest, UnsealedGraphQueriesReturnStatusNotUB) {
  ProvenanceGraph g;
  auto w = g.writer();
  NodeId x = w.Token("x");
  // No Seal(): every children-dependent query reports kInvalidArgument.
  EXPECT_EQ(ComputeGraphStats(g).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(PathExists(g, x, x).status().code(),
            StatusCode::kInvalidArgument);
  g.Seal();
  LIPSTICK_EXPECT_OK(ComputeGraphStats(g).status());
}

using FaultDeathTest = FaultTest;

TEST_F(FaultDeathTest, ErroredResultValueAbortsWithMessage) {
  Result<int> r(Status::InvalidArgument("the reason"));
  EXPECT_DEATH(r.value(), "the reason");
}

}  // namespace
}  // namespace lipstick

// Tests for the static-analysis subsystem (src/analysis/): the shared
// diagnostics engine, the Pig/workflow linters (one broken fixture per
// diagnostic code, asserting the exact code and source location), and the
// provenance-graph validator, including a property test that mutates
// graphs produced by the WorkflowGen benchmark families and expects every
// seeded corruption to be rejected.

#include <gtest/gtest.h>

#include <span>
#include <string>

#include "analysis/diagnostics.h"
#include "analysis/graph_validator.h"
#include "analysis/pig_linter.h"
#include "analysis/workflow_linter.h"
#include "pig/parser.h"
#include "pig/udf.h"
#include "provenance/graph.h"
#include "workflow/wfdsl.h"
#include "workflowgen/arctic.h"
#include "workflowgen/dealership.h"

namespace lipstick::analysis {
namespace {

using workflowgen::ArcticConfig;
using workflowgen::ArcticTopology;
using workflowgen::ArcticWorkflow;
using workflowgen::DealershipConfig;
using workflowgen::DealershipWorkflow;

/// Parses the workflow DSL source and runs the workflow linter over it.
DiagnosticSink LintWf(const std::string& source) {
  Result<Workflow> wf = ParseWorkflow(source);
  EXPECT_TRUE(wf.ok()) << wf.status().ToString();
  DiagnosticSink sink;
  if (wf.ok()) {
    pig::UdfRegistry udfs;
    LintWorkflow(*wf, &udfs, &sink);
  }
  return sink;
}

/// Asserts that `sink` contains a diagnostic with `code` anchored exactly
/// at line:column.
void ExpectDiagAt(const DiagnosticSink& sink, const std::string& code,
                  int line, int column) {
  const Diagnostic* diag = sink.Find(code);
  ASSERT_NE(diag, nullptr)
      << "no " << code << " in:\n" << sink.RenderText();
  EXPECT_EQ(diag->loc.line, line) << sink.RenderText();
  EXPECT_EQ(diag->loc.column, column) << sink.RenderText();
}

/// A minimal valid module wrapping one qout statement block, used by the
/// Pig-linter fixtures. The block starts at line 4, column 8.
std::string OneModuleWf(const std::string& qout_body,
                        const std::string& extra_decls = "") {
  return "module m {\n"
         "  input In(x: int, s: chararray);\n" +
         extra_decls +
         "  output Out(x: int);\n"
         "  qout {\n" +
         qout_body +
         "  }\n"
         "}\n"
         "node n = m;\n";
}

/// ------------------------- diagnostics engine -------------------------

TEST(DiagnosticsTest, SeverityCountingAndLookup) {
  DiagnosticSink sink;
  sink.Report("X0001", Severity::kNote, {1, 1}, "a note");
  sink.Report("X0002", Severity::kWarning, {2, 1}, "a warning");
  sink.Report("X0003", Severity::kError, {3, 1}, "an error");
  EXPECT_EQ(sink.size(), 3u);
  EXPECT_EQ(sink.CountAtLeast(Severity::kNote), 3u);
  EXPECT_EQ(sink.CountAtLeast(Severity::kWarning), 2u);
  EXPECT_EQ(sink.CountAtLeast(Severity::kError), 1u);
  EXPECT_TRUE(sink.HasErrors());
  EXPECT_TRUE(sink.Has("X0002"));
  EXPECT_FALSE(sink.Has("X9999"));
}

TEST(DiagnosticsTest, SortOrdersByLocationThenCode) {
  DiagnosticSink sink;
  sink.Report("B0002", Severity::kError, {5, 2}, "later");
  sink.Report("A0001", Severity::kError, {5, 2}, "same spot");
  sink.Report("C0003", Severity::kError, {1, 9}, "first line");
  sink.Sort();
  EXPECT_EQ(sink.diagnostics()[0].code, "C0003");
  EXPECT_EQ(sink.diagnostics()[1].code, "A0001");
  EXPECT_EQ(sink.diagnostics()[2].code, "B0002");
}

TEST(DiagnosticsTest, TextRenderingIncludesFileLocationAndCode) {
  DiagnosticSink sink;
  sink.Report("L0199", Severity::kError, {7, 3}, "boom", "context");
  std::string text = sink.RenderText("wf.wf");
  EXPECT_NE(text.find("wf.wf:7:3: error: boom [L0199]"), std::string::npos)
      << text;
  EXPECT_NE(text.find("note: context"), std::string::npos) << text;
}

TEST(DiagnosticsTest, JsonRenderingEscapesAndStructures) {
  DiagnosticSink sink;
  sink.Report("G0301", Severity::kWarning, {2, 4}, "say \"hi\"\n");
  std::string json = sink.RenderJson();
  EXPECT_NE(json.find("\"code\": \"G0301\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"severity\": \"warning\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("say \\\"hi\\\"\\n"), std::string::npos) << json;
  EXPECT_NE(json.find("\"line\": 2"), std::string::npos) << json;
}

/// ------------------------- Pig linter fixtures ------------------------
/// Each fixture seeds exactly one defect and asserts its code and the
/// exact line:column in whole-file coordinates.

TEST(PigLinterTest, L0101UndefinedAlias) {
  DiagnosticSink sink = LintWf(OneModuleWf(
      "    Out = FOREACH Ghost GENERATE x;\n"));
  ExpectDiagAt(sink, "L0101", 5, 5);
  // One defect, one report: the target is poisoned, not cascaded.
  EXPECT_EQ(sink.CountAtLeast(Severity::kError), 1u) << sink.RenderText();
}

TEST(PigLinterTest, L0102DeadRebind) {
  DiagnosticSink sink = LintWf(OneModuleWf(
      "    A = FILTER In BY x > 0;\n"
      "    A = FILTER In BY x < 0;\n"
      "    Out = FOREACH A GENERATE x;\n"));
  ExpectDiagAt(sink, "L0102", 6, 5);
}

TEST(PigLinterTest, L0102NotFiredForAccumulatorIdiom) {
  // `S = UNION S, In` reads the previous binding in the same statement.
  std::string src =
      "module m {\n"
      "  input In(x: int);\n"
      "  state S(x: int);\n"
      "  output Out(x: int);\n"
      "  qstate { S = UNION S, In; }\n"
      "  qout { Out = FOREACH In GENERATE x; }\n"
      "}\n"
      "node n = m;\n";
  DiagnosticSink sink = LintWf(src);
  EXPECT_FALSE(sink.Has("L0102")) << sink.RenderText();
  EXPECT_EQ(sink.CountAtLeast(Severity::kWarning), 0u) << sink.RenderText();
}

TEST(PigLinterTest, L0103UnknownField) {
  DiagnosticSink sink = LintWf(OneModuleWf(
      "    Out = FOREACH In GENERATE nope;\n"));
  ExpectDiagAt(sink, "L0103", 5, 31);
}

TEST(PigLinterTest, L0104TypeMismatch) {
  // Binary expressions anchor at the operator token.
  DiagnosticSink sink = LintWf(OneModuleWf(
      "    Out = FOREACH In GENERATE s + 1;\n"));
  ExpectDiagAt(sink, "L0104", 5, 33);
}

TEST(PigLinterTest, L0104FilterConditionMustBeBool) {
  DiagnosticSink sink = LintWf(OneModuleWf(
      "    F = FILTER In BY x + 1;\n"
      "    Out = FOREACH F GENERATE x;\n"));
  ExpectDiagAt(sink, "L0104", 5, 24);
}

TEST(PigLinterTest, L0105UnknownFunction) {
  DiagnosticSink sink = LintWf(OneModuleWf(
      "    Out = FOREACH In GENERATE Frobnicate(x);\n"));
  ExpectDiagAt(sink, "L0105", 5, 31);
}

TEST(PigLinterTest, L0106AggregateArity) {
  DiagnosticSink sink = LintWf(OneModuleWf(
      "    Out = FOREACH In GENERATE COUNT(x);\n"));
  ExpectDiagAt(sink, "L0106", 5, 31);
}

TEST(PigLinterTest, L0107UnusedAlias) {
  DiagnosticSink sink = LintWf(OneModuleWf(
      "    Lonely = FILTER In BY x > 0;\n"
      "    Out = FOREACH In GENERATE x;\n"));
  ExpectDiagAt(sink, "L0107", 5, 5);
  EXPECT_EQ(sink.Find("L0107")->severity, Severity::kWarning);
}

TEST(PigLinterTest, L0108PositionalOutOfRange) {
  DiagnosticSink sink = LintWf(OneModuleWf(
      "    Out = FOREACH In GENERATE $7;\n"));
  ExpectDiagAt(sink, "L0108", 5, 31);
}

TEST(PigLinterTest, L0109DuplicateFieldAlias) {
  DiagnosticSink sink = LintWf(OneModuleWf(
      "    Out2 = FOREACH In GENERATE x AS a, s AS a;\n"
      "    Out = FOREACH In GENERATE x;\n"));
  ExpectDiagAt(sink, "L0109", 5, 40);
  EXPECT_EQ(sink.Find("L0109")->severity, Severity::kWarning);
}

TEST(PigLinterTest, L0110StatementRejectedBySchemaInference) {
  // UNION of incompatible schemas is rejected by the engine's own
  // inference; the linter has no more specific code for it.
  DiagnosticSink sink = LintWf(OneModuleWf(
      "    Pairs = FOREACH In GENERATE x;\n"
      "    U = UNION In, Pairs;\n"
      "    Out = FOREACH U GENERATE x;\n"));
  ExpectDiagAt(sink, "L0110", 6, 5);
}

TEST(PigLinterTest, DirectApiWithRequiredOutputs) {
  Result<pig::Program> program = pig::ParseProgram(
      "Out = FOREACH In GENERATE x;\n");
  ASSERT_TRUE(program.ok());
  PigLintOptions options;
  options.env.emplace(
      "In", Schema::Make({Field("x", FieldType::Int())}));
  options.required_outputs.insert("Out");
  DiagnosticSink sink;
  LintProgram(*program, options, &sink);
  EXPECT_TRUE(sink.empty()) << sink.RenderText();
}

/// ----------------------- workflow linter fixtures ---------------------

constexpr const char* kPassthroughModule =
    "module pass {\n"                         // line 1
    "  input In(x: int);\n"
    "  output Out(x: int);\n"
    "  qout { Out = FOREACH In GENERATE x; }\n"
    "}\n";                                    // line 5

TEST(WorkflowLinterTest, CleanWorkflowHasNoFindings) {
  DiagnosticSink sink = LintWf(
      std::string(kPassthroughModule) +
      "node a = pass;\n"
      "node b = pass;\n"
      "edge a -> b : Out -> In;\n");
  EXPECT_TRUE(sink.empty()) << sink.RenderText();
}

TEST(WorkflowLinterTest, W0201UnknownModule) {
  DiagnosticSink sink = LintWf(
      std::string(kPassthroughModule) +
      "node a = pass;\n"
      "node b = ghost;\n"
      "edge a -> b : Out -> In;\n");
  ExpectDiagAt(sink, "W0201", 7, 6);
}

TEST(WorkflowLinterTest, W0202Cycle) {
  DiagnosticSink sink = LintWf(
      std::string(kPassthroughModule) +
      "node a = pass;\n"
      "node b = pass;\n"
      "edge a -> b : Out -> In;\n"
      "edge b -> a : Out -> In;\n");
  ExpectDiagAt(sink, "W0202", 8, 6);
}

TEST(WorkflowLinterTest, W0203UnknownEdgeRelation) {
  DiagnosticSink sink = LintWf(
      std::string(kPassthroughModule) +
      "node a = pass;\n"
      "node b = pass;\n"
      "edge a -> b : Mystery -> In;\n");
  ExpectDiagAt(sink, "W0203", 8, 6);
}

TEST(WorkflowLinterTest, W0204EdgeSchemaMismatch) {
  DiagnosticSink sink = LintWf(
      std::string(kPassthroughModule) +
      "module wide {\n"                                          // line 6
      "  input In(x: int, y: int);\n"
      "  output Out(x: int, y: int);\n"
      "  qout { Out = FOREACH In GENERATE x, y; }\n"
      "}\n"
      "node a = pass;\n"
      "node b = wide;\n"
      "edge a -> b : Out -> In;\n");                             // line 13
  ExpectDiagAt(sink, "W0204", 13, 6);
}

TEST(WorkflowLinterTest, W0205UncoveredInput) {
  DiagnosticSink sink = LintWf(
      std::string(kPassthroughModule) +
      "module two {\n"
      "  input A(x: int);\n"
      "  input B(x: int);\n"
      "  output Out(x: int);\n"
      "  qout { Out = UNION A, B; }\n"
      "}\n"
      "node a = pass;\n"
      "node b = two;\n"                                          // line 13
      "edge a -> b : Out -> A;\n");
  ExpectDiagAt(sink, "W0205", 13, 6);
}

TEST(WorkflowLinterTest, W0206DanglingOutput) {
  DiagnosticSink sink = LintWf(
      std::string(kPassthroughModule) +
      "module two_out {\n"
      "  input In(x: int);\n"
      "  output Main(x: int);\n"
      "  output Extra(x: int);\n"
      "  qout {\n"
      "    Main = FOREACH In GENERATE x;\n"
      "    Extra = FILTER In BY x > 0;\n"
      "  }\n"
      "}\n"
      "node a = two_out;\n"                                      // line 15
      "node b = pass;\n"
      "edge a -> b : Main -> In;\n");
  ExpectDiagAt(sink, "W0206", 15, 6);
  EXPECT_EQ(sink.Find("W0206")->severity, Severity::kWarning);
}

TEST(WorkflowLinterTest, W0207UnusedModule) {
  DiagnosticSink sink = LintWf(
      std::string(kPassthroughModule) +
      "module spare {\n"                                         // line 6
      "  input In(x: int);\n"
      "  output Out(x: int);\n"
      "  qout { Out = FOREACH In GENERATE x; }\n"
      "}\n"
      "node a = pass;\n");
  ExpectDiagAt(sink, "W0207", 6, 8);
  EXPECT_EQ(sink.Find("W0207")->severity, Severity::kWarning);
}

TEST(WorkflowLinterTest, W0208InstanceConflict) {
  DiagnosticSink sink = LintWf(
      std::string(kPassthroughModule) +
      "module pass2 {\n"
      "  input In(x: int);\n"
      "  output Out(x: int);\n"
      "  qout { Out = FOREACH In GENERATE x; }\n"
      "}\n"
      "node a = pass as shared;\n"
      "node b = pass2 as shared;\n"                              // line 12
      "edge a -> b : Out -> In;\n");
  ExpectDiagAt(sink, "W0208", 12, 6);
}

TEST(WorkflowLinterTest, W0209StateNeverWritten) {
  DiagnosticSink sink = LintWf(
      "module lookup {\n"
      "  input In(x: int);\n"
      "  state Table(x: int);\n"
      "  output Out(x: int);\n"
      "  qout { Out = UNION In, Table; }\n"
      "}\n"
      "node n = lookup;\n");
  const Diagnostic* diag = sink.Find("W0209");
  ASSERT_NE(diag, nullptr) << sink.RenderText();
  EXPECT_EQ(diag->severity, Severity::kNote);
  // Notes do not fail the lint gate.
  EXPECT_EQ(sink.CountAtLeast(Severity::kWarning), 0u) << sink.RenderText();
}

TEST(WorkflowLinterTest, W0210OutputNeverBound) {
  DiagnosticSink sink = LintWf(
      "module broken {\n"
      "  input In(x: int);\n"
      "  output Out(x: int);\n"
      "  qout {\n"                                               // line 4
      "    Other = FOREACH In GENERATE x;\n"
      "  }\n"
      "}\n"
      "node n = broken;\n");
  ExpectDiagAt(sink, "W0210", 4, 8);
}

TEST(WorkflowLinterTest, W0211Disconnected) {
  DiagnosticSink sink = LintWf(
      std::string(kPassthroughModule) +
      "node a = pass;\n"
      "node b = pass;\n"
      "node c = pass;\n"                                         // line 8
      "edge a -> b : Out -> In;\n");
  ExpectDiagAt(sink, "W0211", 8, 6);
}

TEST(WorkflowLinterTest, MultipleDefectsAllReportedInOnePass) {
  // Unlike Workflow::Validate (fail-fast), the linter recovers and
  // reports every independent defect.
  DiagnosticSink sink = LintWf(
      std::string(kPassthroughModule) +
      "node a = pass;\n"
      "node b = ghost;\n"
      "node c = pass;\n"
      "edge a -> c : Mystery -> In;\n");
  EXPECT_TRUE(sink.Has("W0201")) << sink.RenderText();
  EXPECT_TRUE(sink.Has("W0203")) << sink.RenderText();
  EXPECT_TRUE(sink.Has("W0211")) << sink.RenderText();
}

/// ------------------------- graph validator ----------------------------

/// Builds a miniature well-formed graph:
///   t1, t2 (tokens) -> times -> plus; const ⊗ times -> agg; one invocation
///   with an i-node wrapping t1.
struct MiniGraph {
  ProvenanceGraph graph;
  NodeId t1, t2, times, plus, cv, tensor, agg, inode;
  uint32_t inv;

  MiniGraph() {
    ShardWriter writer = graph.writer();
    inv = writer.BeginInvocation("m", "m1", 0);
    t1 = writer.Token("a");
    t2 = writer.Token("b");
    times = writer.Times({t1, t2});
    plus = writer.Plus({times});
    cv = writer.ConstValue(Value::Int(7));
    tensor = writer.Tensor(cv, times);
    agg = writer.Aggregate("SUM", {tensor}, Value::Int(7));
    inode = writer.ModuleInput(inv, t1);
    graph.Seal();
  }
};

DiagnosticSink Validate(const ProvenanceGraph& graph) {
  DiagnosticSink sink;
  ValidateGraph(graph, &sink);
  return sink;
}

TEST(GraphValidatorTest, AcceptsWellFormedGraph) {
  MiniGraph mini;
  DiagnosticSink sink = Validate(mini.graph);
  EXPECT_TRUE(sink.empty()) << sink.RenderText();
  EXPECT_TRUE(CheckGraphInvariants(mini.graph).ok());
}

TEST(GraphValidatorTest, G0301DanglingParent) {
  MiniGraph mini;
  mini.graph.AddParent(mini.plus, MakeNodeId(9, 123));  // no shard 9
  mini.graph.Seal();
  EXPECT_TRUE(Validate(mini.graph).Has("G0301"));
}

TEST(GraphValidatorTest, G0302JointNodeOverDeadParent) {
  MiniGraph mini;
  mini.graph.SetAlive(mini.t2, false);  // · keeps a dead operand
  mini.graph.Seal();
  EXPECT_TRUE(Validate(mini.graph).Has("G0302"));
}

TEST(GraphValidatorTest, G0303TokenWithParents) {
  MiniGraph mini;
  mini.graph.AddParent(mini.t1, mini.t2);
  mini.graph.Seal();
  EXPECT_TRUE(Validate(mini.graph).Has("G0303"));
}

TEST(GraphValidatorTest, G0304DerivationWithoutParents) {
  MiniGraph mini;
  mini.graph.ClearParents(mini.plus);
  mini.graph.Seal();
  EXPECT_TRUE(Validate(mini.graph).Has("G0304"));
}

TEST(GraphValidatorTest, G0304ValueFlagInconsistent) {
  MiniGraph mini;
  mini.graph.SetValueNodeFlag(mini.cv, false);
  mini.graph.Seal();
  EXPECT_TRUE(Validate(mini.graph).Has("G0304"));
}

TEST(GraphValidatorTest, G0305TensorArityBroken) {
  MiniGraph mini;
  mini.graph.AddParent(mini.tensor, mini.t1);
  mini.graph.Seal();
  EXPECT_TRUE(Validate(mini.graph).Has("G0305"));
}

TEST(GraphValidatorTest, G0305TensorOperandsSwapped) {
  MiniGraph mini;
  std::span<const NodeId> p = mini.graph.ParentsOf(mini.tensor);
  const NodeId swapped[2] = {p[1], p[0]};
  mini.graph.SetParents(mini.tensor, swapped);
  mini.graph.Seal();
  EXPECT_TRUE(Validate(mini.graph).Has("G0305"));
}

TEST(GraphValidatorTest, G0306AggregateOverConst) {
  MiniGraph mini;
  const NodeId only_const[1] = {mini.cv};
  mini.graph.SetParents(mini.agg, only_const);
  mini.graph.Seal();
  EXPECT_TRUE(Validate(mini.graph).Has("G0306"));
}

TEST(GraphValidatorTest, G0307UnknownInvocationTag) {
  MiniGraph mini;
  mini.graph.SetInvocationTag(mini.plus, 42);
  mini.graph.Seal();
  EXPECT_TRUE(Validate(mini.graph).Has("G0307"));
}

TEST(GraphValidatorTest, G0307AbortedInvocationWithSurvivors) {
  MiniGraph mini;
  // Abort the invocation record but leave its nodes alive: the rollback
  // that should have killed them never ran.
  mini.graph.AbortInvocation(mini.inv);
  mini.graph.Seal();
  EXPECT_TRUE(Validate(mini.graph).Has("G0307"));
}

TEST(GraphValidatorTest, G0308CorruptedInvocationRecord) {
  MiniGraph mini;
  mini.graph.SetRole(mini.inode, NodeRole::kIntermediate);
  mini.graph.Seal();
  EXPECT_TRUE(Validate(mini.graph).Has("G0308"));
}

TEST(GraphValidatorTest, G0309Cycle) {
  MiniGraph mini;
  mini.graph.AddParent(mini.times, mini.plus);
  mini.graph.Seal();
  EXPECT_TRUE(Validate(mini.graph).Has("G0309"));
}

TEST(GraphValidatorTest, G0310UnsealedIsWarning) {
  MiniGraph mini;
  mini.graph.MarkDirty();
  DiagnosticSink sink = Validate(mini.graph);
  ASSERT_TRUE(sink.Has("G0310")) << sink.RenderText();
  EXPECT_EQ(sink.Find("G0310")->severity, Severity::kWarning);
  EXPECT_FALSE(sink.HasErrors()) << sink.RenderText();
}

TEST(GraphValidatorTest, G0310StaleSealIsError) {
  MiniGraph mini;
  // Mutate parents, then force the sealed() flag back on without
  // rebuilding: the children adjacency is stale while the graph claims
  // it is fresh.
  mini.graph.AddParent(mini.plus, mini.t1);
  mini.graph.MarkSealed();
  DiagnosticSink sink = Validate(mini.graph);
  ASSERT_TRUE(sink.Has("G0310")) << sink.RenderText();
  EXPECT_EQ(sink.Find("G0310")->severity, Severity::kError);
}

TEST(GraphValidatorTest, CheckGraphInvariantsFoldsToInternalError) {
  MiniGraph mini;
  mini.graph.ClearParents(mini.plus);
  mini.graph.Seal();
  Status status = CheckGraphInvariants(mini.graph);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("G0304"), std::string::npos)
      << status.message();
}

/// --------------------- WorkflowGen property test ----------------------
/// Real graphs from both benchmark families validate cleanly; every
/// seeded mutation is rejected.

ProvenanceGraph DealershipGraph() {
  DealershipConfig config;
  config.num_cars = 40;
  config.num_executions = 2;
  config.accept_probability = 0;
  auto wf = DealershipWorkflow::Create(config);
  EXPECT_TRUE(wf.ok()) << wf.status().ToString();
  ProvenanceGraph graph;
  auto outputs = (*wf)->ExecuteOnce(1, &graph);
  EXPECT_TRUE(outputs.ok()) << outputs.status().ToString();
  graph.Seal();
  return graph;
}

ProvenanceGraph ArcticGraph() {
  ArcticConfig config;
  config.topology = ArcticTopology::kSerial;
  config.num_stations = 3;
  config.history_years = 1;
  auto wf = ArcticWorkflow::Create(config);
  EXPECT_TRUE(wf.ok()) << wf.status().ToString();
  ProvenanceGraph graph;
  auto outputs = (*wf)->ExecuteOnce(&graph);
  EXPECT_TRUE(outputs.ok()) << outputs.status().ToString();
  graph.Seal();
  return graph;
}

NodeId FirstNode(const ProvenanceGraph& graph, NodeLabel label,
                 size_t min_parents = 0) {
  NodeId found = kInvalidNode;
  graph.ForEachAliveNode([&](NodeId id) {
    if (found != kInvalidNode) return;
    NodeView n = graph.node(id);
    if (n.label() == label && n.parents().size() >= min_parents) found = id;
  });
  return found;
}

TEST(WorkflowGenPropertyTest, UnmutatedGraphsValidate) {
  ProvenanceGraph dealership = DealershipGraph();
  DiagnosticSink sink = Validate(dealership);
  EXPECT_FALSE(sink.HasErrors()) << sink.RenderText();
  EXPECT_GT(dealership.num_alive(), 0u);

  ProvenanceGraph arctic = ArcticGraph();
  sink = Validate(arctic);
  EXPECT_FALSE(sink.HasErrors()) << sink.RenderText();
  EXPECT_GT(arctic.num_alive(), 0u);
}

TEST(WorkflowGenPropertyTest, DroppedParentsAreRejected) {
  ProvenanceGraph graph = DealershipGraph();
  NodeId victim = FirstNode(graph, NodeLabel::kTimes, 1);
  ASSERT_NE(victim, kInvalidNode);
  graph.ClearParents(victim);
  graph.Seal();
  DiagnosticSink sink = Validate(graph);
  EXPECT_TRUE(sink.HasErrors()) << sink.RenderText();
  EXPECT_TRUE(sink.Has("G0304")) << sink.RenderText();
}

TEST(WorkflowGenPropertyTest, BrokenTensorArityIsRejected) {
  ProvenanceGraph graph = ArcticGraph();
  NodeId tensor = FirstNode(graph, NodeLabel::kTensor);
  ASSERT_NE(tensor, kInvalidNode);
  NodeId token = FirstNode(graph, NodeLabel::kToken);
  ASSERT_NE(token, kInvalidNode);
  graph.AddParent(tensor, token);
  graph.Seal();
  DiagnosticSink sink = Validate(graph);
  EXPECT_TRUE(sink.HasErrors()) << sink.RenderText();
  EXPECT_TRUE(sink.Has("G0305")) << sink.RenderText();
}

TEST(WorkflowGenPropertyTest, UnsealedGraphIsFlagged) {
  ProvenanceGraph graph = DealershipGraph();
  graph.MarkDirty();
  DiagnosticSink sink = Validate(graph);
  EXPECT_GE(sink.CountAtLeast(Severity::kWarning), 1u) << sink.RenderText();
  EXPECT_TRUE(sink.Has("G0310")) << sink.RenderText();
}

TEST(WorkflowGenPropertyTest, DeadParentUnderJointNodeIsRejected) {
  ProvenanceGraph graph = ArcticGraph();
  NodeId times = FirstNode(graph, NodeLabel::kTimes, 2);
  ASSERT_NE(times, kInvalidNode);
  NodeId parent = graph.ParentsOf(times)[0];
  graph.SetAlive(parent, false);
  graph.Seal();
  DiagnosticSink sink = Validate(graph);
  EXPECT_TRUE(sink.HasErrors()) << sink.RenderText();
}

TEST(WorkflowGenPropertyTest, AbortedInvocationCorruptionIsRejected) {
  ProvenanceGraph graph = DealershipGraph();
  ASSERT_GT(graph.invocations().size(), 0u);
  // Clear the record without killing its nodes: simulates a rollback that
  // lost the race with the shard writer.
  graph.AbortInvocation(0);
  graph.Seal();
  DiagnosticSink sink = Validate(graph);
  EXPECT_TRUE(sink.HasErrors()) << sink.RenderText();
  EXPECT_TRUE(sink.Has("G0307")) << sink.RenderText();
}

/// The executor's debug-build hook reuses CheckGraphInvariants; cover the
/// integration surface explicitly so release-test runs (NDEBUG) still
/// exercise it.
TEST(WorkflowGenPropertyTest, ExecutorGraphsPassTheExecutorSelfCheck) {
  ProvenanceGraph dealership = DealershipGraph();
  EXPECT_TRUE(CheckGraphInvariants(dealership).ok());
  ProvenanceGraph arctic = ArcticGraph();
  EXPECT_TRUE(CheckGraphInvariants(arctic).ok());
}

}  // namespace
}  // namespace lipstick::analysis

// Crash-injection matrix for the provenance WAL: every combination of
// workload, WAL fault point, and fault position must leave a log that
// recovers to a validator-clean graph byte-identical to a clean run of
// the recovered execution count (the crash-consistency contract of
// DESIGN.md §5e).

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "analysis/diagnostics.h"
#include "analysis/graph_validator.h"
#include "common/fault.h"
#include "common/str_util.h"
#include "provenance/provio.h"
#include "provenance/recovery.h"
#include "provenance/wal.h"
#include "test_util.h"
#include "workflowgen/arctic.h"
#include "workflowgen/dealership.h"

namespace lipstick {
namespace {

namespace fs = std::filesystem;

enum Workload { kDealership = 0, kArctic = 1 };
constexpr int kWorkloads = 2;
const char* WorkloadName(int w) {
  return w == kDealership ? "dealership" : "arctic";
}

/// Executions per scenario: enough WAL flush/fsync activity that every
/// skip_hits value in the matrix lands on a real I/O event.
constexpr int kExecs = 4;

/// Runs `execs` executions of the workload serially (deterministic append
/// order) into `graph`, with `wal` attached when non-null.
void RunWorkload(int workload, int execs, ProvenanceGraph* graph, Wal* wal) {
  ExecutionOptions options;
  options.durability = wal;
  if (workload == kDealership) {
    workflowgen::DealershipConfig config;
    config.num_cars = 24;
    config.num_executions = execs;
    config.accept_probability = 0;  // never purchase: fixed-length runs
    auto wf = workflowgen::DealershipWorkflow::Create(config);
    ASSERT_TRUE(wf.ok()) << wf.status().ToString();
    (*wf)->executor().set_default_options(options);
    for (int e = 0; e < execs; ++e) {
      auto outputs = (*wf)->ExecuteOnce(/*bid_id=*/e + 1, graph);
      ASSERT_TRUE(outputs.ok()) << outputs.status().ToString();
    }
  } else {
    workflowgen::ArcticConfig config;
    config.topology = workflowgen::ArcticTopology::kSerial;
    config.num_stations = 3;
    config.history_years = 2;
    auto wf = workflowgen::ArcticWorkflow::Create(config);
    ASSERT_TRUE(wf.ok()) << wf.status().ToString();
    (*wf)->executor().set_default_options(options);
    for (int e = 0; e < execs; ++e) {
      auto outputs = (*wf)->ExecuteOnce(graph);
      ASSERT_TRUE(outputs.ok()) << outputs.status().ToString();
    }
  }
}

std::string SealAndSave(ProvenanceGraph* graph) {
  graph->Seal();
  std::ostringstream out;
  Status st = SaveGraph(*graph, out);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return out.str();
}

/// Clean-run reference bytes per (workload, executions), computed once.
const std::string& Reference(int workload, int execs) {
  static auto* cache = new std::map<std::pair<int, int>, std::string>();
  auto key = std::make_pair(workload, execs);
  auto it = cache->find(key);
  if (it != cache->end()) return it->second;
  ProvenanceGraph graph;
  RunWorkload(workload, execs, &graph, nullptr);
  return (*cache)[key] = SealAndSave(&graph);
}

struct ScenarioResult {
  bool fired = false;
  uint64_t executions_recovered = 0;
};

/// One matrix cell: run the workload with the WAL under an injected fault
/// at the `skip`-th I/O event, then crash-recover and check the contract.
ScenarioResult RunScenario(int workload, const std::string& point, int skip) {
  std::string label =
      StrCat(WorkloadName(workload), "/", point, "/skip=", skip);
  SCOPED_TRACE(label);
  fs::path dir =
      fs::temp_directory_path() /
      StrCat("lipstick_crash_", WorkloadName(workload), "_",
             point.substr(point.find('.') + 1), "_", skip);
  fs::remove_all(dir);

  ScenarioResult result;
  {
    WalOptions options;
    options.fsync = FsyncPolicy::kOnCommit;  // max I/O events per run
    auto wal = Wal::Open(dir.string(), options);
    EXPECT_TRUE(wal.ok()) << wal.status().ToString();
    if (!wal.ok()) return result;
    ProvenanceGraph graph;
    Status st = (*wal)->Attach(&graph);
    EXPECT_TRUE(st.ok()) << st.ToString();

    FaultInjector::FaultSpec spec;
    spec.point = point;
    spec.skip_hits = skip;
    spec.max_fires = 1;
    FaultInjector::Global().Arm(spec);
    RunWorkload(workload, kExecs, &graph, wal->get());
    result.fired = FaultInjector::Global().fire_count(point) > 0;
    (void)(*wal)->Close();  // may be dead already; that is the point
    FaultInjector::Global().Reset();
  }

  RecoveryReport report;
  Result<ProvenanceGraph> recovered = RecoverGraph(dir.string(), &report);
  EXPECT_TRUE(recovered.ok()) << recovered.status().ToString();
  if (!recovered.ok()) return result;
  result.executions_recovered = report.executions_recovered;
  EXPECT_LE(report.executions_recovered,
            static_cast<uint64_t>(kExecs));

  // Contract 1: the recovered graph passes the validator with zero
  // diagnostics.
  recovered->Seal();
  analysis::DiagnosticSink sink;
  analysis::ValidateGraph(*recovered, &sink);
  EXPECT_EQ(sink.CountAtLeast(analysis::Severity::kWarning), 0u)
      << sink.RenderText(label);

  // Contract 2: the recovered graph is byte-identical to a clean run of
  // the recovered execution count (committed-prefix semantics).
  std::ostringstream out;
  EXPECT_TRUE(SaveGraph(*recovered, out).ok());
  EXPECT_EQ(out.str(),
            Reference(workload,
                      static_cast<int>(report.executions_recovered)));

  fs::remove_all(dir);
  return result;
}

TEST(CrashMatrixTest, RecoveryContractHoldsAcrossTheMatrix) {
  FaultInjector::Global().Reset();
  const std::string points[] = {"wal.short_write", "wal.fsync",
                                "wal.corrupt"};
  int fired = 0;
  int total = 0;
  for (int workload = 0; workload < kWorkloads; ++workload) {
    for (const std::string& point : points) {
      for (int skip = 0; skip < 9; ++skip) {
        ScenarioResult r = RunScenario(workload, point, skip);
        EXPECT_TRUE(r.fired)
            << WorkloadName(workload) << "/" << point << "/skip=" << skip
            << ": fault never fired — raise kExecs";
        fired += r.fired ? 1 : 0;
        ++total;
      }
    }
  }
  // The issue's acceptance bar: at least 50 distinct injected
  // crash/torn-write positions actually exercised.
  EXPECT_GE(fired, 50) << "only " << fired << " of " << total
                       << " scenarios fired their fault";
  FaultInjector::Global().Reset();
}

}  // namespace
}  // namespace lipstick

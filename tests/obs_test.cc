#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "test_util.h"
#include "workflow/executor.h"
#include "workflow/module.h"
#include "workflow/workflow.h"

namespace lipstick {
namespace {

using ::lipstick::testing::I;
using ::lipstick::testing::MakeSchema;
using ::lipstick::testing::T;

SchemaPtr NumSchema() { return MakeSchema({{"x", FieldType::Int()}}); }

/// Every test starts and ends with a disarmed tracer/registry with clean
/// values, so tests never leak observability state into each other.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { Reset(); }
  void TearDown() override { Reset(); }
  static void Reset() {
    // Start() clears prior events; Stop() disarms again, leaving an empty
    // disarmed tracer for the next test.
    obs::Tracer::Global().Start();
    obs::Tracer::Global().Stop();
    obs::MetricsRegistry::Global().Disable();
    obs::MetricsRegistry::Global().ResetValues();
  }
};

/// ------------------------------- JSON ----------------------------------

TEST_F(ObsTest, JsonParseSerializeRoundTrip) {
  const char* doc =
      R"({"a":1,"b":-2.5,"c":"hi \"there\"","d":[true,false,null],)"
      R"("e":{"nested":[1,2,3]},"f":1e3})";
  auto parsed = obs::ParseJson(doc);
  LIPSTICK_ASSERT_OK(parsed.status());
  auto reparsed = obs::ParseJson(parsed->Serialize());
  LIPSTICK_ASSERT_OK(reparsed.status());
  EXPECT_TRUE(parsed->Equals(*reparsed));
  EXPECT_EQ(parsed->Find("a")->number(), 1);
  EXPECT_EQ(parsed->Find("c")->str(), "hi \"there\"");
  EXPECT_EQ(parsed->Find("d")->array().size(), 3u);
  EXPECT_EQ(parsed->Find("f")->number(), 1000);
}

TEST_F(ObsTest, JsonRejectsMalformed) {
  EXPECT_FALSE(obs::ParseJson("{").ok());
  EXPECT_FALSE(obs::ParseJson("[1,]").ok());
  EXPECT_FALSE(obs::ParseJson("{\"a\":1} trailing").ok());
  EXPECT_FALSE(obs::ParseJson("nul").ok());
  EXPECT_FALSE(obs::ParseJson("\"unterminated").ok());
}

/// ------------------------------ metrics --------------------------------

TEST_F(ObsTest, MetricsDisarmedRecordsNothing) {
  auto& m = obs::MetricsRegistry::Global();
  obs::MetricId c = m.RegisterCounter("test.disarmed_counter");
  m.CounterAdd(c, 5);
  for (const auto& [name, v] : m.Snap().counters) {
    if (name == "test.disarmed_counter") {
      EXPECT_EQ(v, 0u);
    }
  }
}

TEST_F(ObsTest, MetricsCountersGaugesHistograms) {
  auto& m = obs::MetricsRegistry::Global();
  obs::MetricId c = m.RegisterCounter("test.counter");
  obs::MetricId g = m.RegisterGauge("test.gauge");
  obs::MetricId h = m.RegisterHistogram("test.hist_us");
  // Registration is idempotent per name.
  EXPECT_EQ(c, m.RegisterCounter("test.counter"));

  m.Enable();
  m.CounterAdd(c, 2);
  m.CounterAdd(c);
  m.GaugeSet(g, -7);
  for (double v : {1.0, 3.0, 100.0, 1000.0}) m.Observe(h, v);
  m.Disable();

  auto snap = m.Snap();
  uint64_t counter = 0;
  int64_t gauge = 0;
  bool gauge_seen = false;
  for (const auto& [name, v] : snap.counters) {
    if (name == "test.counter") counter = v;
  }
  for (const auto& [name, v] : snap.gauges) {
    if (name == "test.gauge") {
      gauge = v;
      gauge_seen = true;
    }
  }
  EXPECT_EQ(counter, 3u);
  EXPECT_TRUE(gauge_seen);
  EXPECT_EQ(gauge, -7);
  for (const auto& hist : snap.histograms) {
    if (hist.name != "test.hist_us") continue;
    EXPECT_EQ(hist.count, 4u);
    EXPECT_DOUBLE_EQ(hist.sum, 1104.0);
    EXPECT_DOUBLE_EQ(hist.min, 1.0);
    EXPECT_DOUBLE_EQ(hist.max, 1000.0);
    // Approximate: quantiles resolve to log2-bucket midpoints.
    EXPECT_GE(hist.ApproxQuantile(0.99), 64.0);
    EXPECT_LE(hist.ApproxQuantile(0.5), 64.0);
  }
}

TEST_F(ObsTest, MetricsRenderJsonParses) {
  auto& m = obs::MetricsRegistry::Global();
  obs::MetricId c = m.RegisterCounter("test.render_counter");
  obs::MetricId h = m.RegisterHistogram("test.render_us");
  m.Enable();
  m.CounterAdd(c, 41);
  m.Observe(h, 12.5);
  m.Disable();

  auto doc = obs::ParseJson(m.RenderJson());
  LIPSTICK_ASSERT_OK(doc.status());
  const obs::JsonValue* counters = doc->Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->Find("test.render_counter"), nullptr);
  EXPECT_EQ(counters->Find("test.render_counter")->number(), 41);
  const obs::JsonValue* hists = doc->Find("histograms");
  ASSERT_NE(hists, nullptr);
  const obs::JsonValue* hist = hists->Find("test.render_us");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->Find("count")->number(), 1);
  EXPECT_EQ(hist->Find("sum")->number(), 12.5);
  // Text rendering mentions the metric too.
  EXPECT_NE(m.RenderText().find("test.render_counter"),
            std::string::npos);
}

TEST_F(ObsTest, MetricsShardedWritersAggregate) {
  auto& m = obs::MetricsRegistry::Global();
  obs::MetricId c = m.RegisterCounter("test.sharded_counter");
  obs::MetricId h = m.RegisterHistogram("test.sharded_us");
  m.Enable();
  constexpr int kThreads = 4, kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        m.CounterAdd(c);
        m.Observe(h, 2.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  m.Disable();

  auto snap = m.Snap();
  for (const auto& [name, v] : snap.counters) {
    if (name == "test.sharded_counter") {
      EXPECT_EQ(v, uint64_t{kThreads} * kPerThread);
    }
  }
  for (const auto& hist : snap.histograms) {
    if (hist.name != "test.sharded_us") continue;
    EXPECT_EQ(hist.count, uint64_t{kThreads} * kPerThread);
    EXPECT_DOUBLE_EQ(hist.sum, 2.0 * kThreads * kPerThread);
  }
}

/// ------------------------------- tracer --------------------------------

TEST_F(ObsTest, SpanDisarmedIsInactiveAndFree) {
  obs::ObsSpan span("test", "never.recorded");
  EXPECT_FALSE(span.active());
  EXPECT_EQ(span.id(), 0u);
  EXPECT_EQ(obs::Tracer::Global().num_events(), 0u);
}

TEST_F(ObsTest, SpansNestPerThread) {
  auto& tracer = obs::Tracer::Global();
  tracer.Start();
  uint64_t outer_id = 0, inner_id = 0;
  {
    obs::ObsSpan outer("test", "outer");
    outer_id = outer.id();
    EXPECT_EQ(obs::ObsSpan::Current(), outer_id);
    {
      obs::ObsSpan inner("test", "inner");
      inner_id = inner.id();
      EXPECT_EQ(obs::ObsSpan::Current(), inner_id);
    }
    EXPECT_EQ(obs::ObsSpan::Current(), outer_id);
  }
  tracer.Stop();
  EXPECT_EQ(obs::ObsSpan::Current(), 0u);

  auto doc = obs::ParseJson(tracer.ExportJson());
  LIPSTICK_ASSERT_OK(doc.status());
  const obs::JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  uint64_t inner_parent = 0, outer_parent = 99;
  for (const obs::JsonValue& e : events->array()) {
    const obs::JsonValue* name = e.Find("name");
    if (name == nullptr) continue;
    const obs::JsonValue* span_args = e.Find("args");
    if (name->str() == "inner") {
      inner_parent = uint64_t(span_args->Find("parent")->number());
    } else if (name->str() == "outer") {
      outer_parent = uint64_t(span_args->Find("parent")->number());
    }
  }
  EXPECT_EQ(inner_parent, outer_id);
  EXPECT_EQ(outer_parent, 0u);
}

TEST_F(ObsTest, TraceExportIsValidChromeTraceJson) {
  auto& tracer = obs::Tracer::Global();
  tracer.Start();
  {
    obs::ObsSpan span("test", "with \"quotes\" and \\slashes\\");
    span.Arg("str", std::string_view("a\nb"));
    span.Arg("count", uint64_t{42});
    span.Arg("delta", -1.5);
  }
  tracer.Stop();

  std::string json = tracer.ExportJson();
  auto doc = obs::ParseJson(json);
  LIPSTICK_ASSERT_OK(doc.status());
  EXPECT_EQ(doc->Find("displayTimeUnit")->str(), "ms");
  const obs::JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);

  bool found = false;
  for (const obs::JsonValue& e : events->array()) {
    if (e.Find("ph")->str() != "X") continue;
    // Complete events carry the required Chrome trace_event fields.
    EXPECT_NE(e.Find("name"), nullptr);
    EXPECT_NE(e.Find("cat"), nullptr);
    EXPECT_NE(e.Find("ts"), nullptr);
    EXPECT_NE(e.Find("dur"), nullptr);
    EXPECT_NE(e.Find("pid"), nullptr);
    EXPECT_NE(e.Find("tid"), nullptr);
    if (e.Find("name")->str() == "with \"quotes\" and \\slashes\\") {
      found = true;
      const obs::JsonValue* span_args = e.Find("args");
      EXPECT_EQ(span_args->Find("str")->str(), "a\nb");
      EXPECT_EQ(span_args->Find("count")->number(), 42);
      EXPECT_EQ(span_args->Find("delta")->number(), -1.5);
    }
  }
  EXPECT_TRUE(found);

  // Golden round-trip: reserialize the parsed document and re-parse; the
  // two documents must be structurally identical.
  auto reparsed = obs::ParseJson(doc->Serialize());
  LIPSTICK_ASSERT_OK(reparsed.status());
  EXPECT_TRUE(doc->Equals(*reparsed));
}

/// --------------------- executor integration ----------------------------

/// Diamond workflow (in -> a, b -> m) for executor instrumentation tests.
Workflow BuildDiamond() {
  Workflow w;
  auto source = MakeModule("source", {{"Ext", NumSchema()}}, {},
                           {{"Out", NumSchema()}}, "",
                           "Out = FOREACH Ext GENERATE x;");
  EXPECT_TRUE(source.ok());
  EXPECT_TRUE(w.AddModule(std::move(*source)).ok());
  auto doubler = MakeModule("doubler", {{"In", NumSchema()}}, {},
                            {{"Out", NumSchema()}}, "",
                            "Out = FOREACH In GENERATE x * 2 AS x;");
  EXPECT_TRUE(doubler.ok());
  EXPECT_TRUE(w.AddModule(std::move(*doubler)).ok());
  auto merge = MakeModule("merge", {{"A", NumSchema()}, {"B", NumSchema()}},
                          {}, {{"Out", NumSchema()}}, "",
                          "Out = UNION A, B;");
  EXPECT_TRUE(merge.ok());
  EXPECT_TRUE(w.AddModule(std::move(*merge)).ok());
  EXPECT_TRUE(w.AddNode("in", "source").ok());
  EXPECT_TRUE(w.AddNode("a", "doubler").ok());
  EXPECT_TRUE(w.AddNode("b", "doubler").ok());
  EXPECT_TRUE(w.AddNode("m", "merge").ok());
  EXPECT_TRUE(w.AddEdge("in", "a", {EdgeRelation{"Out", "In"}}).ok());
  EXPECT_TRUE(w.AddEdge("in", "b", {EdgeRelation{"Out", "In"}}).ok());
  EXPECT_TRUE(w.AddEdge("a", "m", {EdgeRelation{"Out", "A"}}).ok());
  EXPECT_TRUE(w.AddEdge("b", "m", {EdgeRelation{"Out", "B"}}).ok());
  return w;
}

WorkflowInputs DiamondInputs() {
  WorkflowInputs inputs;
  Bag ext;
  for (int i = 0; i < 10; ++i) ext.Add(T({I(i)}));
  inputs["in"]["Ext"] = std::move(ext);
  return inputs;
}

TEST_F(ObsTest, ParallelExecutorSpansCompleteAndParented) {
  Workflow w = BuildDiamond();
  WorkflowExecutor exec(&w, nullptr);
  LIPSTICK_ASSERT_OK(exec.Initialize());

  auto& tracer = obs::Tracer::Global();
  tracer.Start();
  ProvenanceGraph graph;
  auto outputs = exec.Execute(DiamondInputs(), &graph, 4);
  LIPSTICK_ASSERT_OK(outputs.status());
  tracer.Stop();

  auto doc = obs::ParseJson(tracer.ExportJson());
  LIPSTICK_ASSERT_OK(doc.status());

  uint64_t execute_id = 0;
  std::set<std::string> node_names;
  std::vector<uint64_t> node_parents;
  size_t attempt_events = 0;
  for (const obs::JsonValue& e : doc->Find("traceEvents")->array()) {
    const obs::JsonValue* ph = e.Find("ph");
    if (ph == nullptr || ph->str() != "X") continue;
    const std::string& cat = e.Find("cat")->str();
    const obs::JsonValue* span_args = e.Find("args");
    // Every complete event is closed: it has a finite duration.
    EXPECT_GE(e.Find("dur")->number(), 0.0);
    if (cat == "executor") {
      execute_id = uint64_t(span_args->Find("span")->number());
    } else if (cat == "executor.node") {
      node_names.insert(e.Find("name")->str());
      node_parents.push_back(uint64_t(span_args->Find("parent")->number()));
    } else if (cat == "executor.attempt") {
      ++attempt_events;
    }
  }
  // One span per workflow node, each parented under the execute span even
  // though they ran on 4 worker threads.
  EXPECT_EQ(node_names, (std::set<std::string>{"in", "a", "b", "m"}));
  ASSERT_NE(execute_id, 0u);
  for (uint64_t p : node_parents) EXPECT_EQ(p, execute_id);
  EXPECT_EQ(attempt_events, 4u);
}

TEST_F(ObsTest, ExecutorMetricsCountNodesAndProvenance) {
  Workflow w = BuildDiamond();
  WorkflowExecutor exec(&w, nullptr);
  LIPSTICK_ASSERT_OK(exec.Initialize());

  auto& m = obs::MetricsRegistry::Global();
  m.Enable();
  ProvenanceGraph graph;
  auto outputs = exec.Execute(DiamondInputs(), &graph, 4);
  LIPSTICK_ASSERT_OK(outputs.status());
  graph.Seal();
  m.Disable();

  uint64_t nodes_run = 0, executions = 0, prov_appended = 0, failures = 1;
  for (const auto& [name, v] : m.Snap().counters) {
    if (name == "executor.nodes_run") nodes_run = v;
    if (name == "executor.executions") executions = v;
    if (name == "provenance.nodes_appended") prov_appended = v;
    if (name == "executor.node_failures") failures = v;
  }
  EXPECT_EQ(nodes_run, 4u);
  EXPECT_EQ(executions, 1u);
  EXPECT_EQ(failures, 0u);
  // Every provenance node the workers appended is accounted for.
  EXPECT_EQ(prov_appended, graph.num_nodes());

  // Seal() recorded graph-shape gauges.
  int64_t gauge_nodes = -1;
  for (const auto& [name, v] : m.Snap().gauges) {
    if (name == "provenance.nodes") gauge_nodes = v;
  }
  EXPECT_EQ(gauge_nodes, int64_t(graph.num_nodes()));
}

TEST_F(ObsTest, DisarmedExecutionRecordsNothingAndStaysCheap) {
  Workflow w = BuildDiamond();
  WorkflowExecutor exec(&w, nullptr);
  LIPSTICK_ASSERT_OK(exec.Initialize());

  // Warm-up, then measure a disarmed run: no events, no metric values.
  auto outputs = exec.Execute(DiamondInputs(), nullptr, 4);
  LIPSTICK_ASSERT_OK(outputs.status());

  WallTimer timer;
  outputs = exec.Execute(DiamondInputs(), nullptr, 4);
  double disarmed_seconds = timer.ElapsedSeconds();
  LIPSTICK_ASSERT_OK(outputs.status());

  EXPECT_EQ(obs::Tracer::Global().num_events(), 0u);
  for (const auto& [name, v] : obs::MetricsRegistry::Global().Snap().counters) {
    EXPECT_EQ(v, 0u) << name;
  }
  // The disarmed hooks are relaxed atomic loads; a 4-node diamond on 10
  // tuples crosses ~20 hook sites. Even a glacial CI machine finishes in
  // well under a second — this guards against a hook accidentally doing
  // real work (allocation, locking, I/O) when disarmed.
  EXPECT_LT(disarmed_seconds, 1.0);
}

}  // namespace
}  // namespace lipstick

// Parameterized property suites: invariants that must hold on the
// provenance graph of *any* tracked workflow run, checked across a sweep
// of seeds, workloads, and topologies.

#include <gtest/gtest.h>

#include <sstream>

#include "provenance/deletion.h"
#include "provenance/provio.h"
#include "provenance/query.h"
#include "provenance/semiring.h"
#include "provenance/subgraph.h"
#include "provenance/zoom.h"
#include "test_util.h"
#include "workflowgen/arctic.h"
#include "workflowgen/dealership.h"

namespace lipstick {
namespace {

/// ------------------- dealership graph properties -----------------------

class DealershipPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    workflowgen::DealershipConfig cfg;
    cfg.num_cars = 160;
    cfg.num_executions = 3;
    cfg.seed = GetParam();
    auto wf = workflowgen::DealershipWorkflow::Create(cfg);
    LIPSTICK_ASSERT_OK(wf.status());
    LIPSTICK_ASSERT_OK((*wf)->Run(&graph_).status());
    graph_.Seal();
  }

  ProvenanceGraph graph_;
};

TEST_P(DealershipPropertyTest, GraphIsAcyclicWithValidParents) {
  // Every parent reference resolves, and following parents never revisits
  // a node (derivation graphs are DAGs by construction).
  GraphEvaluator<CountingSemiring> eval(graph_);  // would not terminate on
                                                  // a cycle (memoized DFS)
  for (NodeId id : graph_.AllNodeIds()) {
    if (!graph_.Contains(id)) continue;
    for (NodeId p : graph_.ParentsOf(id)) {
      EXPECT_TRUE(graph_.Contains(p)) << "dangling parent of " << id;
    }
    EXPECT_GE(eval.Eval(id), 1u)
        << "alive node " << id << " has zero derivations";
  }
}

TEST_P(DealershipPropertyTest, DeletionMatchesCountingSemiring) {
  // Definition 4.2 == zeroing the token in (N, +, ·, δ): checked for a
  // sample of tokens (workflow inputs and used state bases).
  std::vector<NodeId> tokens;
  for (NodeId id : graph_.AllNodeIds()) {
    if (!graph_.Contains(id)) continue;
    NodeView n = graph_.node(id);
    if (n.label() != NodeLabel::kToken) continue;
    if (n.role() == NodeRole::kWorkflowInput ||
        !graph_.ChildrenOf(id).empty()) {
      tokens.push_back(id);
    }
  }
  size_t step = tokens.size() > 12 ? tokens.size() / 12 : 1;
  for (size_t i = 0; i < tokens.size(); i += step) {
    NodeId t = tokens[i];
    auto deleted = *ComputeDeletionSet(graph_, {t});
    GraphEvaluator<CountingSemiring> eval(graph_, {{t, 0}});
    for (NodeId n : graph_.AllNodeIds()) {
      if (!graph_.Contains(n)) continue;
      EXPECT_EQ(deleted.count(n) > 0, eval.Eval(n) == 0)
          << "token " << graph_.node(t).payload() << ", node " << n;
    }
  }
}

TEST_P(DealershipPropertyTest, SerializationRoundTrips) {
  std::ostringstream os;
  LIPSTICK_ASSERT_OK(SaveGraph(graph_, os));
  std::istringstream is(os.str());
  Result<ProvenanceGraph> loaded = LoadGraph(is);
  LIPSTICK_ASSERT_OK(loaded.status());
  EXPECT_EQ(loaded->num_nodes(), graph_.num_nodes());
  EXPECT_EQ(loaded->invocations().size(), graph_.invocations().size());
  std::ostringstream os2;
  LIPSTICK_ASSERT_OK(SaveGraph(*loaded, os2));
  EXPECT_EQ(os.str(), os2.str());
}

TEST_P(DealershipPropertyTest, ZoomRoundTripPreservesAliveCount) {
  size_t before = graph_.num_alive();
  Zoomer zoomer(&graph_);
  LIPSTICK_ASSERT_OK(zoomer.ZoomOutAll());
  size_t coarse = graph_.num_alive();
  EXPECT_LT(coarse, before);
  std::set<std::string> modules;
  for (const InvocationInfo& inv : graph_.invocations()) {
    modules.insert(std::string(graph_.str(inv.module_name)));
  }
  LIPSTICK_ASSERT_OK(zoomer.ZoomIn(modules));
  EXPECT_EQ(graph_.num_alive(), before);
}

TEST_P(DealershipPropertyTest, ZoomCoarseningConnectivity) {
  // Record, in the fine-grained graph, which (workflow-input, module-
  // output) pairs of the same execution are connected and which later-
  // execution outputs are reachable only through module state.
  auto inputs = FindNodes(graph_, ByRole(NodeRole::kWorkflowInput));
  ASSERT_FALSE(inputs.empty());
  NodeId first_input = inputs.front();  // execution 0
  std::vector<NodeId> state_mediated;   // outputs of later executions
  for (const InvocationInfo& inv : graph_.invocations()) {
    if (inv.execution == 0) continue;
    for (NodeId out : inv.output_nodes) {
      if (graph_.Contains(out) && *PathExists(graph_, first_input, out)) {
        state_mediated.push_back(out);
        if (state_mediated.size() >= 5) break;
      }
    }
  }

  Zoomer zoomer(&graph_);
  LIPSTICK_ASSERT_OK(zoomer.ZoomOutAll());

  // (1) Within each invocation, the coarse view connects every input to
  // every output through the collapsed module node (the black-box
  // over-approximation).
  for (const InvocationInfo& inv : graph_.invocations()) {
    for (NodeId in : inv.input_nodes) {
      if (!graph_.Contains(in)) continue;
      for (NodeId out : inv.output_nodes) {
        if (!graph_.Contains(out)) continue;
        EXPECT_TRUE(*PathExists(graph_, in, out))
            << "coarse module lost its own input->output edge";
      }
    }
  }
  // (2) The paper's motivating limitation, verified: dependencies that
  // flow through module *state* across executions disappear from the
  // coarse-grained view — this is precisely what fine-grained provenance
  // recovers.
  for (NodeId out : state_mediated) {
    EXPECT_FALSE(*PathExists(graph_, first_input, out))
        << "state-mediated dependency should be invisible when coarse";
  }
}

TEST_P(DealershipPropertyTest, SubgraphContainsAncestryClosure) {
  // For any node: subgraph(n) ⊇ ancestors(n) ∪ {n}, and every node in the
  // subgraph is connected to n through the ancestor/descendant relation
  // or is a parent of a descendant.
  auto outputs = FindNodes(graph_, ByRole(NodeRole::kModuleOutput));
  ASSERT_FALSE(outputs.empty());
  NodeId n = outputs[outputs.size() / 2];
  auto sub = *SubgraphQuery(graph_, n);
  auto anc = Ancestors(graph_, n);
  auto desc = *Descendants(graph_, n);
  EXPECT_TRUE(sub.count(n));
  for (NodeId a : anc) EXPECT_TRUE(sub.count(a));
  for (NodeId d : desc) EXPECT_TRUE(sub.count(d));
  for (NodeId s : sub) {
    bool justified = s == n || anc.count(s) || desc.count(s);
    if (!justified) {
      // Must be a parent of some descendant (sibling).
      bool is_sibling = false;
      for (NodeId d : desc) {
        for (NodeId p : graph_.ParentsOf(d)) {
          if (p == s) is_sibling = true;
        }
      }
      EXPECT_TRUE(is_sibling) << "unjustified subgraph member " << s;
    }
  }
}

TEST_P(DealershipPropertyTest, TrackingIsDeterministic) {
  workflowgen::DealershipConfig cfg;
  cfg.num_cars = 160;
  cfg.num_executions = 3;
  cfg.seed = GetParam();
  auto wf = workflowgen::DealershipWorkflow::Create(cfg);
  LIPSTICK_ASSERT_OK(wf.status());
  ProvenanceGraph again;
  LIPSTICK_ASSERT_OK((*wf)->Run(&again).status());
  std::ostringstream a, b;
  LIPSTICK_ASSERT_OK(SaveGraph(graph_, a));
  LIPSTICK_ASSERT_OK(SaveGraph(again, b));
  EXPECT_EQ(a.str(), b.str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DealershipPropertyTest,
                         ::testing::Values(1, 7, 23, 51, 98));

/// --------------------- arctic sweep properties -------------------------

using ArcticParam =
    std::tuple<workflowgen::ArcticTopology, workflowgen::Selectivity>;

class ArcticPropertyTest : public ::testing::TestWithParam<ArcticParam> {};

TEST_P(ArcticPropertyTest, GlobalMinMatchesDirectComputation) {
  auto [topology, selectivity] = GetParam();
  workflowgen::ArcticConfig cfg;
  cfg.topology = topology;
  cfg.num_stations = 6;
  cfg.fan_out = 3;
  cfg.selectivity = selectivity;
  cfg.history_years = 3;
  cfg.seed = 1234;
  auto wf = workflowgen::ArcticWorkflow::Create(cfg);
  LIPSTICK_ASSERT_OK(wf.status());
  ProvenanceGraph graph;
  auto result = (*wf)->RunSeries(1, &graph);
  LIPSTICK_ASSERT_OK(result.status());

  // Direct recomputation over the same synthetic climate: history months
  // 1998-2000 plus the 2001-01 measurement, filtered by selectivity
  // (query: year=2001, month=1 -> season covers months 1-3).
  double expected = 1e18;
  auto matches = [&](int year, int month) {
    switch (selectivity) {
      case workflowgen::Selectivity::kAll:
        return true;
      case workflowgen::Selectivity::kYear:
        return year == 2001;
      case workflowgen::Selectivity::kMonth:
        return month == 1;
      case workflowgen::Selectivity::kSeason:
        return (month - 1) / 3 == 0;
    }
    return false;
  };
  for (int s = 1; s <= cfg.num_stations; ++s) {
    for (int year = 1998; year <= 2000; ++year) {
      for (int month = 1; month <= 12; ++month) {
        if (!matches(year, month)) continue;
        expected = std::min(
            expected, workflowgen::ArcticWorkflow::SyntheticTemperature(
                          s, year, month, cfg.seed));
      }
    }
    if (matches(2001, 1)) {
      expected = std::min(
          expected, workflowgen::ArcticWorkflow::SyntheticTemperature(
                        s, 2001, 1, cfg.seed));
    }
  }
  EXPECT_NEAR(*result, expected, 1e-9);

  // The winning observation is in the global minimum's ancestry.
  graph.Seal();
  NodeId global_out = kInvalidNode;
  for (const InvocationInfo& inv : graph.invocations()) {
    if (graph.str(inv.module_name) == "arctic_out" &&
        !inv.output_nodes.empty()) {
      global_out = inv.output_nodes.front();
    }
  }
  ASSERT_NE(global_out, kInvalidNode);
  auto anc = Ancestors(graph, global_out);
  bool winner_found = false;
  for (NodeId id : anc) {
    NodeView n = graph.node(id);
    if (n.label() == NodeLabel::kConstValue && n.value().is_double() &&
        std::abs(n.value().double_value() - expected) < 1e-9) {
      winner_found = true;
    }
  }
  EXPECT_TRUE(winner_found)
      << "the minimum's value node must appear in its derivation";
}

INSTANTIATE_TEST_SUITE_P(
    TopologySelectivity, ArcticPropertyTest,
    ::testing::Combine(
        ::testing::Values(workflowgen::ArcticTopology::kSerial,
                          workflowgen::ArcticTopology::kParallel,
                          workflowgen::ArcticTopology::kDense),
        ::testing::Values(workflowgen::Selectivity::kAll,
                          workflowgen::Selectivity::kSeason,
                          workflowgen::Selectivity::kMonth,
                          workflowgen::Selectivity::kYear)));

/// -------------------- eager/lazy ablation property ---------------------

TEST(StateNodeAblationTest, EagerAndLazyAgreeOnQueries) {
  // Eager and lazy state-node construction must answer existence-
  // dependency queries identically; eager only adds unused "s" wrappers.
  ProvenanceGraph graphs[2];
  NodeId best_bid[2] = {kInvalidNode, kInvalidNode};
  size_t nodes[2];
  for (int eager = 0; eager < 2; ++eager) {
    workflowgen::DealershipConfig cfg;
    cfg.num_cars = 120;
    cfg.num_executions = 2;
    cfg.seed = 9;
    cfg.accept_probability = 0;
    auto wf = workflowgen::DealershipWorkflow::Create(cfg);
    LIPSTICK_ASSERT_OK(wf.status());
    (*wf)->executor().set_eager_state_nodes(eager == 1);
    ProvenanceGraph& g = graphs[eager];
    auto outputs = (*wf)->ExecuteOnce(1, &g);
    LIPSTICK_ASSERT_OK(outputs.status());
    const Relation& best = outputs->at("agg").at("BestBid");
    ASSERT_FALSE(best.bag.empty());
    best_bid[eager] = best.bag.at(0).annot;
    g.Seal();
    nodes[eager] = g.num_alive();
  }
  EXPECT_GT(nodes[1], nodes[0]);  // eager strictly larger
  // Both graphs: the bid depends on its request, never on an Accord car.
  for (int eager = 0; eager < 2; ++eager) {
    const ProvenanceGraph& g = graphs[eager];
    auto inputs = FindNodes(g, ByRole(NodeRole::kWorkflowInput));
    bool dep_any_input = false;
    for (NodeId in : inputs) {
      dep_any_input = dep_any_input || *DependsOn(g, best_bid[eager], in);
    }
    EXPECT_TRUE(dep_any_input);
  }
}

}  // namespace
}  // namespace lipstick

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "provenance/deletion.h"
#include "provenance/subgraph.h"
#include "test_util.h"
#include "workflowgen/arctic.h"
#include "workflowgen/dealership.h"

namespace lipstick::workflowgen {
namespace {

TEST(DealershipTest, WorkflowValidates) {
  DealershipConfig cfg;
  cfg.num_cars = 40;
  auto wf = DealershipWorkflow::Create(cfg);
  LIPSTICK_ASSERT_OK(wf.status());
  LIPSTICK_EXPECT_OK((*wf)->workflow().Validate(&(*wf)->udfs()));
  // 2 input nodes + 4+4 dealers + agg + and + xor + car = 14 nodes.
  EXPECT_EQ((*wf)->workflow().nodes().size(), 14u);
  EXPECT_EQ((*wf)->workflow().InputNodes().size(), 2u);
}

TEST(DealershipTest, BidsAreProducedAndAggregated) {
  DealershipConfig cfg;
  cfg.num_cars = 400;
  cfg.num_executions = 1;
  cfg.seed = 5;
  auto wf = DealershipWorkflow::Create(cfg);
  LIPSTICK_ASSERT_OK(wf.status());
  auto outputs = (*wf)->ExecuteOnce(1, nullptr);
  LIPSTICK_ASSERT_OK(outputs.status());
  const Relation& best = outputs->at("agg").at("BestBid");
  ASSERT_EQ(best.bag.size(), 1u);
  double best_amount = best.bag.at(0).tuple.at(3).AsDouble();
  // The best bid is the minimum over all dealer bids.
  double min_seen = 1e18;
  int bids = 0;
  for (int k = 1; k <= 4; ++k) {
    const Relation& dealer_bids =
        outputs->at("dealer_bid_" + std::to_string(k)).at("Bids");
    for (const AnnotatedTuple& t : dealer_bids.bag) {
      min_seen = std::min(min_seen, t.tuple.at(3).AsDouble());
      ++bids;
    }
  }
  EXPECT_GE(bids, 1);
  EXPECT_DOUBLE_EQ(best_amount, min_seen);
}

TEST(DealershipTest, PurchaseUpdatesSoldCars) {
  DealershipConfig cfg;
  cfg.num_cars = 400;
  cfg.num_executions = 50;
  cfg.seed = 3;  // seed chosen so the buyer accepts within the budget
  auto wf = DealershipWorkflow::Create(cfg);
  LIPSTICK_ASSERT_OK(wf.status());
  auto stats = (*wf)->Run(nullptr);
  LIPSTICK_ASSERT_OK(stats.status());
  ASSERT_TRUE(stats->purchased);
  // Exactly one dealership recorded the sale in its state.
  int sold_total = 0;
  for (int k = 1; k <= 4; ++k) {
    auto state =
        (*wf)->executor().GetState("dealer" + std::to_string(k), "SoldCars");
    LIPSTICK_ASSERT_OK(state.status());
    sold_total += static_cast<int>((*state)->bag.size());
  }
  EXPECT_EQ(sold_total, 1);
}

TEST(DealershipTest, RepeatRequestsBidSameOrLower) {
  DealershipConfig cfg;
  cfg.num_cars = 400;
  cfg.num_executions = 6;
  cfg.seed = 1000;  // buyer with low acceptance: several bid rounds
  auto wf = DealershipWorkflow::Create(cfg);
  LIPSTICK_ASSERT_OK(wf.status());
  double prev = 1e18;
  for (int e = 1; e <= cfg.num_executions; ++e) {
    auto outputs = (*wf)->ExecuteOnce(e, nullptr);
    LIPSTICK_ASSERT_OK(outputs.status());
    const Relation& best = outputs->at("agg").at("BestBid");
    if (best.bag.empty()) break;  // purchase ended the bidding
    double amount = best.bag.at(0).tuple.at(3).AsDouble();
    EXPECT_LE(amount, prev + 1e-9)
        << "dealers must consult bid history and not raise prices";
    prev = amount;
  }
}

TEST(DealershipTest, DeterministicAcrossRuns) {
  for (int trial = 0; trial < 2; ++trial) {
    static double first_bid = 0;
    DealershipConfig cfg;
    cfg.num_cars = 200;
    cfg.num_executions = 1;
    cfg.seed = 99;
    auto wf = DealershipWorkflow::Create(cfg);
    LIPSTICK_ASSERT_OK(wf.status());
    auto stats = (*wf)->Run(nullptr);
    LIPSTICK_ASSERT_OK(stats.status());
    if (trial == 0) {
      first_bid = stats->best_bid;
    } else {
      EXPECT_DOUBLE_EQ(stats->best_bid, first_bid);
    }
  }
}

TEST(DealershipTest, TrackingDoesNotChangeResults) {
  DealershipConfig cfg;
  cfg.num_cars = 200;
  cfg.num_executions = 4;
  cfg.seed = 17;
  auto plain = DealershipWorkflow::Create(cfg);
  LIPSTICK_ASSERT_OK(plain.status());
  auto tracked = DealershipWorkflow::Create(cfg);
  LIPSTICK_ASSERT_OK(tracked.status());
  auto plain_stats = (*plain)->Run(nullptr);
  ProvenanceGraph graph;
  auto tracked_stats = (*tracked)->Run(&graph);
  LIPSTICK_ASSERT_OK(plain_stats.status());
  LIPSTICK_ASSERT_OK(tracked_stats.status());
  EXPECT_EQ(plain_stats->executions, tracked_stats->executions);
  EXPECT_EQ(plain_stats->purchased, tracked_stats->purchased);
  EXPECT_DOUBLE_EQ(plain_stats->best_bid, tracked_stats->best_bid);
  EXPECT_GT(tracked_stats->graph_nodes, 0u);
}

TEST(DealershipTest, FineGrainedDependencyStat) {
  // Section 5.5: a sold car depends on a small fraction of the state
  // tuples (the cars of the requested model at one dealership), not on
  // 100% of them as coarse-grained provenance would claim.
  DealershipConfig cfg;
  cfg.num_cars = 240;
  cfg.num_executions = 40;
  cfg.seed = 3;
  auto wf = DealershipWorkflow::Create(cfg);
  LIPSTICK_ASSERT_OK(wf.status());
  ProvenanceGraph graph;
  auto stats = (*wf)->Run(&graph);
  LIPSTICK_ASSERT_OK(stats.status());
  ASSERT_TRUE(stats->purchased);
  graph.Seal();

  // Find the o-node of the final PurchasedCar output (car module).
  NodeId sold_output = kInvalidNode;
  for (const InvocationInfo& inv : graph.invocations()) {
    if (graph.str(inv.module_name) == "car" && !inv.output_nodes.empty()) {
      sold_output = inv.output_nodes.back();
    }
  }
  ASSERT_NE(sold_output, kInvalidNode);

  auto ancestors = Ancestors(graph, sold_output);
  size_t state_bases_in_ancestry = 0;
  size_t state_bases_total = 0;
  for (NodeId id : graph.AllNodeIds()) {
    if (!graph.Contains(id)) continue;
    if (graph.node(id).role() != NodeRole::kStateBase) continue;
    ++state_bases_total;
    if (ancestors.count(id)) ++state_bases_in_ancestry;
  }
  ASSERT_GT(state_bases_total, 0u);
  double fraction = static_cast<double>(state_bases_in_ancestry) /
                    static_cast<double>(state_bases_total);
  // Only cars of one model (1/12 of models) matter: far below 100%.
  EXPECT_GT(fraction, 0.0);
  EXPECT_LT(fraction, 0.5);
}

TEST(ArcticTest, AllTopologiesValidateAndRun) {
  for (ArcticTopology topo : {ArcticTopology::kSerial,
                              ArcticTopology::kParallel,
                              ArcticTopology::kDense}) {
    ArcticConfig cfg;
    cfg.topology = topo;
    cfg.num_stations = 6;
    cfg.fan_out = 3;
    cfg.history_years = 3;
    auto wf = ArcticWorkflow::Create(cfg);
    LIPSTICK_ASSERT_OK(wf.status());
    LIPSTICK_EXPECT_OK((*wf)->workflow().Validate(&(*wf)->udfs()));
    auto result = (*wf)->RunSeries(2, nullptr);
    LIPSTICK_ASSERT_OK(result.status());
    EXPECT_LT(*result, 0.0) << "an Arctic minimum should be below freezing";
  }
}

TEST(ArcticTest, GlobalMinimumMatchesDirectComputation) {
  ArcticConfig cfg;
  cfg.topology = ArcticTopology::kParallel;
  cfg.num_stations = 5;
  cfg.history_years = 4;
  cfg.selectivity = Selectivity::kAll;
  cfg.seed = 77;
  auto wf = ArcticWorkflow::Create(cfg);
  LIPSTICK_ASSERT_OK(wf.status());
  auto result = (*wf)->RunSeries(1, nullptr);
  LIPSTICK_ASSERT_OK(result.status());

  // Recompute directly from the synthetic climate model: history months
  // 1997-2000 plus the new 2001-01 measurement, over all stations.
  double expected = 1e18;
  for (int s = 1; s <= cfg.num_stations; ++s) {
    for (int year = 1997; year <= 2000; ++year) {
      for (int month = 1; month <= 12; ++month) {
        expected = std::min(expected, ArcticWorkflow::SyntheticTemperature(
                                          s, year, month, cfg.seed));
      }
    }
    expected = std::min(expected, ArcticWorkflow::SyntheticTemperature(
                                      s, 2001, 1, cfg.seed));
  }
  EXPECT_NEAR(*result, expected, 1e-9);
}

TEST(ArcticTest, SelectivityRestrictsObservations) {
  // With selectivity=month only January observations enter the minimum;
  // the January minimum is >= the all-months minimum (July can't win, but
  // some other month could be colder than any January).
  double mins[2];
  int idx = 0;
  for (Selectivity sel : {Selectivity::kAll, Selectivity::kMonth}) {
    ArcticConfig cfg;
    cfg.topology = ArcticTopology::kParallel;
    cfg.num_stations = 3;
    cfg.history_years = 4;
    cfg.selectivity = sel;
    cfg.seed = 5;
    auto wf = ArcticWorkflow::Create(cfg);
    LIPSTICK_ASSERT_OK(wf.status());
    auto result = (*wf)->RunSeries(1, nullptr);
    LIPSTICK_ASSERT_OK(result.status());
    mins[idx++] = *result;
  }
  EXPECT_LE(mins[0], mins[1]);
}

TEST(ArcticTest, SelectivityAffectsProvenanceSize) {
  // Figure 6(b)/(c): lower selectivity (= more matching tuples) yields a
  // larger provenance graph.
  size_t nodes_all = 0, nodes_month = 0, nodes_year = 0;
  for (auto [sel, out] :
       {std::pair<Selectivity, size_t*>{Selectivity::kAll, &nodes_all},
        {Selectivity::kMonth, &nodes_month},
        {Selectivity::kYear, &nodes_year}}) {
    ArcticConfig cfg;
    cfg.topology = ArcticTopology::kParallel;
    cfg.num_stations = 3;
    cfg.history_years = 5;
    cfg.selectivity = sel;
    auto wf = ArcticWorkflow::Create(cfg);
    LIPSTICK_ASSERT_OK(wf.status());
    ProvenanceGraph graph;
    LIPSTICK_ASSERT_OK((*wf)->RunSeries(2, &graph).status());
    *out = graph.num_nodes();
  }
  EXPECT_GT(nodes_all, nodes_month);
  EXPECT_GT(nodes_month, nodes_year);
}

TEST(ArcticTest, DenseTopologyEdgeCount) {
  ArcticConfig cfg;
  cfg.topology = ArcticTopology::kDense;
  cfg.num_stations = 9;
  cfg.fan_out = 3;
  cfg.history_years = 2;
  auto wf = ArcticWorkflow::Create(cfg);
  LIPSTICK_ASSERT_OK(wf.status());
  // Edges: 9 in->sta + (layers-1=2) * 3*3 inter-layer + 3 ->out = 30.
  EXPECT_EQ((*wf)->workflow().edges().size(), 30u);
  // Invalid: stations not divisible by fan-out.
  ArcticConfig bad = cfg;
  bad.num_stations = 10;
  EXPECT_FALSE(ArcticWorkflow::Create(bad).ok());
}

TEST(ArcticTest, MinTempPropagatesAlongSerialChain) {
  // In the serial topology the last station's output already includes the
  // minima of every earlier station, so it equals the global minimum.
  ArcticConfig cfg;
  cfg.topology = ArcticTopology::kSerial;
  cfg.num_stations = 4;
  cfg.history_years = 3;
  auto wf = ArcticWorkflow::Create(cfg);
  LIPSTICK_ASSERT_OK(wf.status());
  auto outputs = (*wf)->ExecuteOnce(nullptr);
  LIPSTICK_ASSERT_OK(outputs.status());
  double last_station =
      outputs->at("sta4").at("MinTempOut").bag.at(0).tuple.at(0).AsDouble();
  double global =
      outputs->at("out").at("GlobalMin").bag.at(0).tuple.at(0).AsDouble();
  EXPECT_DOUBLE_EQ(last_station, global);
}

TEST(ArcticTest, WhatIfDeletionOnColdestObservation) {
  // A deletion-propagation what-if on a real workflow graph: deleting the
  // winning observation's tensor chain must kill the dependent aggregates.
  ArcticConfig cfg;
  cfg.topology = ArcticTopology::kParallel;
  cfg.num_stations = 2;
  cfg.history_years = 2;
  cfg.selectivity = Selectivity::kMonth;
  auto wf = ArcticWorkflow::Create(cfg);
  LIPSTICK_ASSERT_OK(wf.status());
  ProvenanceGraph graph;
  LIPSTICK_ASSERT_OK((*wf)->RunSeries(1, &graph).status());
  graph.Seal();
  // Pick any state base token that contributed (has children) and check
  // dependency queries answer sensibly.
  NodeId used_base = kInvalidNode;
  for (NodeId id : graph.AllNodeIds()) {
    if (graph.Contains(id) &&
        graph.node(id).role() == NodeRole::kStateBase &&
        !graph.ChildrenOf(id).empty()) {
      used_base = id;
      break;
    }
  }
  ASSERT_NE(used_base, kInvalidNode);
  auto deleted = *ComputeDeletionSet(graph, {used_base});
  EXPECT_GT(deleted.size(), 1u);
}

}  // namespace
}  // namespace lipstick::workflowgen

#ifndef LIPSTICK_TESTS_TEST_UTIL_H_
#define LIPSTICK_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "pig/interpreter.h"
#include "pig/parser.h"
#include "provenance/graph.h"
#include "relational/value.h"

namespace lipstick::testing {

/// Materializes a traversal span (ParentsOf / ChildrenOf / parents()) for
/// gtest container matchers.
inline std::vector<NodeId> ToVec(std::span<const NodeId> ids) {
  return std::vector<NodeId>(ids.begin(), ids.end());
}

/// EXPECT that a Status/Result is OK, printing the message otherwise.
#define LIPSTICK_EXPECT_OK(expr)                        \
  do {                                                  \
    auto _st = (expr);                                  \
    EXPECT_TRUE(_st.ok()) << _st.ToString();            \
  } while (0)

#define LIPSTICK_ASSERT_OK(expr)                        \
  do {                                                  \
    auto _st = (expr);                                  \
    ASSERT_TRUE(_st.ok()) << _st.ToString();            \
  } while (0)

/// Shorthand value constructors for test literals.
inline Value I(int64_t v) { return Value::Int(v); }
inline Value D(double v) { return Value::Double(v); }
inline Value S(const std::string& v) { return Value::String(v); }
inline Value B(bool v) { return Value::Bool(v); }

/// Builds a tuple from values.
inline Tuple T(std::vector<Value> values) { return Tuple(std::move(values)); }

/// Builds a flat schema from (name, type) pairs.
inline SchemaPtr MakeSchema(
    std::initializer_list<std::pair<std::string, FieldType>> fields) {
  std::vector<Field> fs;
  for (const auto& [name, type] : fields) fs.emplace_back(name, type);
  return Schema::Make(std::move(fs));
}

/// Builds a relation with auto-annotated tuples (annotations left empty).
inline Relation MakeRelation(const std::string& name, SchemaPtr schema,
                             std::vector<Tuple> tuples) {
  Relation rel(name, std::move(schema));
  for (Tuple& t : tuples) rel.bag.Add(std::move(t));
  return rel;
}

/// Parses and runs `source` against the given environment; returns the
/// relation bound to `result_name`.
inline Result<Relation> RunPig(const std::string& source,
                               pig::Environment* env,
                               const std::string& result_name,
                               const pig::UdfRegistry* udfs = nullptr,
                               ShardWriter* writer = nullptr) {
  static const pig::UdfRegistry* kEmpty = new pig::UdfRegistry();
  LIPSTICK_ASSIGN_OR_RETURN(pig::Program program,
                            pig::ParseProgram(source));
  pig::Interpreter interp(udfs != nullptr ? udfs : kEmpty);
  LIPSTICK_RETURN_IF_ERROR(interp.Run(program, env, writer));
  LIPSTICK_ASSIGN_OR_RETURN(const Relation* rel, env->Lookup(result_name));
  return *rel;
}

/// Collects one column of a bag as values (by field index).
inline std::vector<Value> Column(const Bag& bag, size_t idx) {
  std::vector<Value> out;
  for (const AnnotatedTuple& t : bag) out.push_back(t.tuple.at(idx));
  return out;
}

}  // namespace lipstick::testing

#endif  // LIPSTICK_TESTS_TEST_UTIL_H_

// Tests for the unified read path: GraphSnapshot, the shared traversal
// engine, lazy GraphViews, and their equivalence with the eager mutating
// operators — including byte-identity of materialized views under provio
// and a multi-threaded stress run (exercised under TSan in CI).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "provenance/deletion.h"
#include "provenance/dot.h"
#include "provenance/graph.h"
#include "provenance/provio.h"
#include "provenance/query.h"
#include "provenance/snapshot.h"
#include "provenance/subgraph.h"
#include "provenance/traverse.h"
#include "provenance/view.h"
#include "provenance/zoom.h"
#include "test_util.h"
#include "workflowgen/arctic.h"
#include "workflowgen/dealership.h"

namespace lipstick {
namespace {

std::string SaveBytes(const ProvenanceGraph& graph) {
  std::ostringstream os;
  EXPECT_TRUE(SaveGraph(graph, os).ok());
  return os.str();
}

/// Clones a graph through the provio round trip (node ids, string-pool
/// order, and bytes are all stable across Save/Load).
ProvenanceGraph CloneSealed(const ProvenanceGraph& graph) {
  std::istringstream is(SaveBytes(graph));
  Result<ProvenanceGraph> copy = LoadGraph(is);
  EXPECT_TRUE(copy.ok()) << copy.status().ToString();
  copy->Seal();
  return std::move(*copy);
}

ProvenanceGraph BuildDealershipGraph() {
  workflowgen::DealershipConfig cfg;
  cfg.num_cars = 200;
  cfg.num_executions = 3;
  cfg.seed = 11;
  auto wf = workflowgen::DealershipWorkflow::Create(cfg);
  EXPECT_TRUE(wf.ok());
  ProvenanceGraph graph;
  EXPECT_TRUE((*wf)->Run(&graph).ok());
  graph.Seal();
  return graph;
}

ProvenanceGraph BuildArcticGraph() {
  workflowgen::ArcticConfig cfg;
  cfg.topology = workflowgen::ArcticTopology::kSerial;
  cfg.num_stations = 4;
  cfg.history_years = 5;
  auto wf = workflowgen::ArcticWorkflow::Create(cfg);
  EXPECT_TRUE(wf.ok());
  ProvenanceGraph graph;
  EXPECT_TRUE((*wf)->RunSeries(3, &graph).ok());
  graph.Seal();
  return graph;
}

// ---------------------------------------------------------------------
// GraphSnapshot basics.
// ---------------------------------------------------------------------

TEST(SnapshotTest, CaptureRequiresSealedGraph) {
  ProvenanceGraph g;
  auto w = g.writer();
  NodeId a = w.Token("a");
  (void)a;
  Result<GraphSnapshot> snap = GraphSnapshot::Capture(g);
  EXPECT_FALSE(snap.ok());
  g.Seal();
  snap = GraphSnapshot::Capture(g);
  LIPSTICK_ASSERT_OK(snap.status());
  EXPECT_TRUE(snap->sealed());
  EXPECT_EQ(snap->num_nodes(), g.num_nodes());
}

TEST(SnapshotTest, CaptureForParentsWorksUnsealed) {
  ProvenanceGraph g;
  auto w = g.writer();
  NodeId a = w.Token("a");
  NodeId p = w.Plus({a});
  GraphSnapshot snap = GraphSnapshot::CaptureForParents(g);
  EXPECT_FALSE(snap.sealed());
  EXPECT_TRUE(snap.Contains(a));
  ASSERT_EQ(snap.ParentsOf(p).size(), 1u);
  EXPECT_EQ(snap.ParentsOf(p)[0], a);
}

TEST(SnapshotTest, VisitedBitmapPoolReusesAndClears) {
  ProvenanceGraph g = BuildDealershipGraph();
  Result<GraphSnapshot> snap = GraphSnapshot::Capture(g);
  LIPSTICK_ASSERT_OK(snap.status());
  NodeId some = *g.AllNodeIds().begin();
  const VisitedSet* first = nullptr;
  {
    VisitedLease lease = snap->AcquireVisited();
    first = &*lease;
    EXPECT_FALSE(lease->Test(some));
    lease->Set(some);
    EXPECT_TRUE(lease->Test(some));
  }
  // Returned to the pool cleared; the next acquire reuses the allocation.
  VisitedLease again = snap->AcquireVisited();
  EXPECT_EQ(&*again, first);
  EXPECT_FALSE(again->Test(some));
}

// ---------------------------------------------------------------------
// Traversal engine.
// ---------------------------------------------------------------------

TEST(TraverseTest, ParallelReachMatchesSequentialTraverse) {
  ProvenanceGraph g = BuildArcticGraph();
  Result<GraphSnapshot> snap = GraphSnapshot::Capture(g);
  LIPSTICK_ASSERT_OK(snap.status());
  // Seed with every workflow-input token: a wide frontier.
  std::vector<NodeId> seeds =
      FindNodes(*snap, ByLabel(NodeLabel::kToken), 1);
  ASSERT_FALSE(seeds.empty());
  for (TraverseDirection dir :
       {TraverseDirection::kForward, TraverseDirection::kBackward}) {
    std::vector<NodeId> sequential;
    {
      VisitedLease visited = snap->AcquireVisited();
      Traverse(*snap, seeds, dir, *visited, [&](NodeId n, NodeId) {
        sequential.push_back(n);
        return Visit::kExpand;
      });
    }
    VisitedLease visited = snap->AcquireVisited();
    std::vector<NodeId> parallel =
        ParallelReach(*snap, seeds, dir, 4, *visited);
    std::sort(sequential.begin(), sequential.end());
    std::sort(parallel.begin(), parallel.end());
    EXPECT_EQ(sequential, parallel);
    // The visited bitmap marks exactly the result.
    for (NodeId id : parallel) EXPECT_TRUE(visited->Test(id));
  }
}

TEST(TraverseTest, ParallelForCoversRangeOnce) {
  std::vector<std::atomic<int>> hits(10007);
  ParallelFor(hits.size(), 4, [&](size_t begin, size_t end, int) {
    for (size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(TraverseTest, SnapshotQueriesMatchGraphQueries) {
  ProvenanceGraph g = BuildDealershipGraph();
  Result<GraphSnapshot> snap = GraphSnapshot::Capture(g);
  LIPSTICK_ASSERT_OK(snap.status());
  GraphStats gs = *ComputeGraphStats(g);
  GraphStats ss = *ComputeGraphStats(*snap);
  EXPECT_EQ(gs.nodes, ss.nodes);
  EXPECT_EQ(gs.edges, ss.edges);
  EXPECT_EQ(gs.depth, ss.depth);
  EXPECT_EQ(gs.max_fan_in, ss.max_fan_in);
  EXPECT_EQ(gs.max_fan_out, ss.max_fan_out);
  std::vector<NodeId> tokens = FindNodes(g, ByLabel(NodeLabel::kToken));
  EXPECT_EQ(tokens, FindNodes(*snap, ByLabel(NodeLabel::kToken), 1));
  // Parallel find returns the same ids in the same (scan) order.
  EXPECT_EQ(tokens, FindNodes(*snap, ByLabel(NodeLabel::kToken), 4));
  ASSERT_GE(tokens.size(), 2u);
  for (NodeId t : tokens) {
    EXPECT_EQ(Ancestors(g, t), Ancestors(*snap, t));
  }
  // Joint set-dependency agrees between the graph and snapshot forms.
  std::vector<NodeId> pair = {tokens.front(), tokens.back()};
  for (NodeId t : tokens) {
    EXPECT_EQ(*DependsOnSet(g, t, pair), *DependsOnSet(*snap, t, pair));
  }
}

// ---------------------------------------------------------------------
// Lazy views vs eager operators: byte-identity.
// ---------------------------------------------------------------------

TEST(ViewTest, ZoomOutViewMaterializesByteIdenticalToEagerZoom) {
  ProvenanceGraph original = BuildDealershipGraph();
  for (const std::set<std::string>& modules :
       {std::set<std::string>{"dealer"},
        std::set<std::string>{"dealer", "aggregate"}}) {
    // Eager: mutate a clone with the Zoomer and save it.
    ProvenanceGraph eager = CloneSealed(original);
    Zoomer zoomer(&eager);
    LIPSTICK_ASSERT_OK(zoomer.ZoomOut(modules));
    std::string eager_bytes = SaveBytes(eager);

    // Lazy: plan a view over an untouched clone and materialize.
    ProvenanceGraph base = CloneSealed(original);
    Result<GraphSnapshot> snap = GraphSnapshot::Capture(base);
    LIPSTICK_ASSERT_OK(snap.status());
    Result<GraphView> view = ZoomOutView(*snap, modules, 4);
    LIPSTICK_ASSERT_OK(view.status());
    Result<ProvenanceGraph> materialized = view->Materialize();
    LIPSTICK_ASSERT_OK(materialized.status());
    EXPECT_EQ(SaveBytes(*materialized), eager_bytes)
        << "zoom view bytes diverge for " << modules.size() << " module(s)";
    // The base graph itself is untouched by the lazy path.
    EXPECT_EQ(SaveBytes(base), SaveBytes(original));
    // Node-count bookkeeping agrees with the eager result.
    EXPECT_EQ(view->num_visible(), eager.num_alive());
  }
}

TEST(ViewTest, ZoomOutViewDotMatchesEagerDot) {
  ProvenanceGraph original = BuildDealershipGraph();
  ProvenanceGraph eager = CloneSealed(original);
  Zoomer zoomer(&eager);
  LIPSTICK_ASSERT_OK(zoomer.ZoomOut({"dealer"}));
  std::ostringstream eager_dot;
  LIPSTICK_ASSERT_OK(WriteDot(eager, eager_dot));

  Result<GraphSnapshot> snap = GraphSnapshot::Capture(original);
  LIPSTICK_ASSERT_OK(snap.status());
  Result<GraphView> view = ZoomOutView(*snap, {"dealer"}, 2);
  LIPSTICK_ASSERT_OK(view.status());
  std::ostringstream view_dot;
  LIPSTICK_ASSERT_OK(WriteDot(*view, view_dot));
  EXPECT_EQ(view_dot.str(), eager_dot.str());

  // And rendering the materialized view is identical to rendering the view.
  Result<ProvenanceGraph> materialized = view->Materialize();
  LIPSTICK_ASSERT_OK(materialized.status());
  std::ostringstream mat_dot;
  LIPSTICK_ASSERT_OK(WriteDot(*materialized, mat_dot));
  EXPECT_EQ(view_dot.str(), mat_dot.str());
}

TEST(ViewTest, SubgraphViewMatchesEagerRestriction) {
  ProvenanceGraph original = BuildDealershipGraph();
  std::vector<NodeId> tokens = FindNodes(original, ByLabel(NodeLabel::kToken));
  ASSERT_FALSE(tokens.empty());
  NodeId node = tokens.front();

  Result<GraphSnapshot> snap = GraphSnapshot::Capture(original);
  LIPSTICK_ASSERT_OK(snap.status());
  auto members = *SubgraphQuery(*snap, node);
  Result<GraphView> view = SubgraphView(*snap, node, 4);
  LIPSTICK_ASSERT_OK(view.status());
  EXPECT_EQ(view->num_visible(), members.size());
  EXPECT_EQ(view->VisibleSet(), members);

  // Eager restriction: kill every non-member on a clone and save.
  ProvenanceGraph eager = CloneSealed(original);
  for (NodeId id : eager.AllNodeIds()) {
    if (!members.count(id)) eager.SetAlive(id, false);
  }
  eager.Seal();
  Result<ProvenanceGraph> materialized = view->Materialize();
  LIPSTICK_ASSERT_OK(materialized.status());
  EXPECT_EQ(SaveBytes(*materialized), SaveBytes(eager));

  // Dot of the view == dot of the full graph restricted to the subgraph.
  DotOptions options;
  options.subset = {members.begin(), members.end()};
  std::ostringstream restricted_dot;
  LIPSTICK_ASSERT_OK(WriteDot(original, restricted_dot, options));
  std::ostringstream view_dot;
  LIPSTICK_ASSERT_OK(WriteDot(*view, view_dot));
  EXPECT_EQ(view_dot.str(), restricted_dot.str());
}

TEST(ViewTest, ZoomOutViewOfUnknownModuleFails) {
  ProvenanceGraph g = BuildDealershipGraph();
  Result<GraphSnapshot> snap = GraphSnapshot::Capture(g);
  LIPSTICK_ASSERT_OK(snap.status());
  EXPECT_FALSE(ZoomOutView(*snap, {"nonexistent_module"}, 1).ok());
}

// ---------------------------------------------------------------------
// Concurrency stress: N reader threads over one snapshot must agree with
// the single-threaded baseline. Runs under TSan in CI.
// ---------------------------------------------------------------------

TEST(SnapshotStressTest, ConcurrentMixedReadersMatchBaseline) {
  ProvenanceGraph g = BuildDealershipGraph();
  Result<GraphSnapshot> snap_or = GraphSnapshot::Capture(g);
  LIPSTICK_ASSERT_OK(snap_or.status());
  const GraphSnapshot& snap = *snap_or;

  std::vector<NodeId> tokens = FindNodes(snap, ByLabel(NodeLabel::kToken), 1);
  ASSERT_GE(tokens.size(), 2u);
  NodeId probe = tokens.front();
  NodeId other = tokens.back();

  // Single-threaded baselines.
  const std::string baseline_zoom_bytes = [&] {
    Result<GraphView> view = ZoomOutView(snap, {"dealer"}, 1);
    EXPECT_TRUE(view.ok());
    return SaveBytes(*view->Materialize());
  }();
  const auto baseline_members = *SubgraphQuery(snap, probe);
  const auto baseline_depends = *DependsOn(snap, other, probe);
  const auto baseline_stats = *ComputeGraphStats(snap);

  constexpr int kThreads = 8;
  constexpr int kRounds = 4;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        switch ((t + round) % 4) {
          case 0: {
            Result<GraphView> view = ZoomOutView(snap, {"dealer"}, 2);
            if (!view.ok() ||
                SaveBytes(*view->Materialize()) != baseline_zoom_bytes) {
              mismatches.fetch_add(1);
            }
            break;
          }
          case 1: {
            auto members = SubgraphQuery(snap, probe);
            if (!members.ok() || *members != baseline_members) {
              mismatches.fetch_add(1);
            }
            break;
          }
          case 2: {
            auto dep = DependsOn(snap, other, probe);
            if (!dep.ok() || *dep != baseline_depends) {
              mismatches.fetch_add(1);
            }
            break;
          }
          case 3: {
            auto stats = ComputeGraphStats(snap);
            if (!stats.ok() || stats->edges != baseline_stats.edges ||
                stats->depth != baseline_stats.depth) {
              mismatches.fetch_add(1);
            }
            break;
          }
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace lipstick

#include "provenance/wal.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "common/fault.h"
#include "common/str_util.h"
#include "provenance/provio.h"
#include "provenance/recovery.h"
#include "test_util.h"
#include "workflow/executor.h"
#include "workflow/wfdsl.h"
#include "workflowgen/arctic.h"
#include "workflowgen/dealership.h"

namespace lipstick {
namespace {

namespace fs = std::filesystem;

using ::lipstick::testing::I;
using ::lipstick::testing::T;

/// A two-module workflow with state, so every execution produces module
/// invocations, state nodes, and aggregate structure — enough surface to
/// notice any replay divergence.
constexpr char kWfSource[] = R"WF(
module source {
  input Ext(x: int);
  output Out(x: int);
  qout { Out = FOREACH Ext GENERATE x; }
}
module acc {
  input In(x: int);
  state Seen(x: int);
  output Total(t: int);
  qstate { Seen = UNION Seen, In; }
  qout {
    G = GROUP Seen ALL;
    Total = FOREACH G GENERATE SUM(Seen.x) AS t;
  }
}
node in = source;
node a = acc;
edge in -> a : Out -> In;
)WF";

/// Fresh, empty WAL directory per test.
fs::path FreshDir(const std::string& name) {
  fs::path dir = fs::temp_directory_path() / ("lipstick_" + name);
  fs::remove_all(dir);
  return dir;
}

/// Deterministic input for execution `e`.
WorkflowInputs InputsFor(int e) {
  WorkflowInputs inputs;
  Bag ext;
  for (int i = 0; i < 4; ++i) ext.Add(T({I(e * 10 + i)}));
  inputs["in"]["Ext"] = std::move(ext);
  return inputs;
}

/// Owns a parsed workflow and its executor (the executor keeps pointers
/// into the workflow, so both must live together).
struct Runner {
  std::unique_ptr<Workflow> wf;
  std::unique_ptr<WorkflowExecutor> exec;

  Runner() {
    Result<Workflow> parsed = ParseWorkflow(kWfSource);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    wf = std::make_unique<Workflow>(std::move(*parsed));
    exec = std::make_unique<WorkflowExecutor>(wf.get(), nullptr);
    EXPECT_TRUE(exec->Initialize().ok());
  }

  /// Runs executions [from, to) through the short Execute overload (which
  /// honors set_default_options, like the workflowgen drivers do).
  void Run(int from, int to, ProvenanceGraph* graph) {
    for (int e = from; e < to; ++e) {
      auto outputs = exec->Execute(InputsFor(e), graph);
      ASSERT_TRUE(outputs.ok()) << outputs.status().ToString();
    }
  }
};

std::string SaveBytes(ProvenanceGraph* graph) {
  graph->Seal();
  std::ostringstream out;
  Status st = SaveGraph(*graph, out);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return out.str();
}

/// A clean (no WAL) run of `execs` executions, as provio bytes — the
/// committed-prefix reference that recovery must reproduce exactly.
std::string ReferenceBytes(int execs) {
  Runner runner;
  ProvenanceGraph graph;
  runner.Run(0, execs, &graph);
  return SaveBytes(&graph);
}

/// Runs `execs` executions with an attached WAL, closes the log, and
/// returns the in-memory graph bytes.
std::string RunWithWal(const fs::path& dir, int execs,
                       const WalOptions& options = {}) {
  Runner runner;
  auto wal = Wal::Open(dir.string(), options);
  EXPECT_TRUE(wal.ok()) << wal.status().ToString();
  ProvenanceGraph graph;
  LIPSTICK_EXPECT_OK((*wal)->Attach(&graph));
  ExecutionOptions exec_options;
  exec_options.durability = wal->get();
  runner.exec->set_default_options(exec_options);
  runner.Run(0, execs, &graph);
  LIPSTICK_EXPECT_OK((*wal)->Close());
  return SaveBytes(&graph);
}

std::string RecoveredBytes(const fs::path& dir, RecoveryReport* report,
                           const RecoveryOptions& options = {}) {
  Result<ProvenanceGraph> graph = RecoverGraph(dir.string(), report, options);
  EXPECT_TRUE(graph.ok()) << graph.status().ToString();
  if (!graph.ok()) return "";
  return SaveBytes(&*graph);
}

class DurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

/// --------------------------- clean round trips --------------------------

TEST_F(DurabilityTest, EmptyLogRecoversEmptyGraph) {
  fs::path dir = FreshDir("wal_empty");
  {
    auto wal = Wal::Open(dir.string());
    LIPSTICK_ASSERT_OK(wal.status());
    ProvenanceGraph graph;
    LIPSTICK_EXPECT_OK((*wal)->Attach(&graph));
    LIPSTICK_EXPECT_OK((*wal)->Close());
  }
  RecoveryReport report;
  Result<ProvenanceGraph> graph = RecoverGraph(dir.string(), &report);
  LIPSTICK_ASSERT_OK(graph.status());
  EXPECT_EQ(graph->num_nodes(), 0u);
  EXPECT_EQ(report.executions_recovered, 0u);
  EXPECT_EQ(report.torn_segments, 0u);
}

TEST_F(DurabilityTest, ExecutorRoundTripIsByteIdentical) {
  fs::path dir = FreshDir("wal_roundtrip");
  std::string in_memory = RunWithWal(dir, 5);
  RecoveryReport report;
  std::string recovered = RecoveredBytes(dir, &report);
  EXPECT_EQ(recovered, in_memory);
  EXPECT_EQ(report.executions_recovered, 5u);
  EXPECT_EQ(report.records_discarded, 0u);
  EXPECT_EQ(recovered, ReferenceBytes(5));
}

TEST_F(DurabilityTest, AllFsyncPoliciesRoundTrip) {
  for (FsyncPolicy policy : {FsyncPolicy::kNever, FsyncPolicy::kOnCommit,
                             FsyncPolicy::kOnSavepoint}) {
    fs::path dir = FreshDir(std::string("wal_fsync_") +
                            FsyncPolicyToString(policy));
    WalOptions options;
    options.fsync = policy;
    std::string in_memory = RunWithWal(dir, 3, options);
    RecoveryReport report;
    EXPECT_EQ(RecoveredBytes(dir, &report), in_memory)
        << FsyncPolicyToString(policy);
    EXPECT_EQ(report.executions_recovered, 3u);
  }
}

TEST_F(DurabilityTest, TinyBufferAndSegmentsStillRoundTrip) {
  // Force many flushes and segment rolls: every append overflows the
  // buffer, segments roll every ~1 KiB.
  fs::path dir = FreshDir("wal_tiny");
  WalOptions options;
  options.buffer_bytes = 1;
  options.segment_bytes = 1024;
  std::string in_memory = RunWithWal(dir, 4, options);
  uint64_t segments = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    uint64_t seq = 0;
    if (walfmt::ParseSegmentName(entry.path().filename().string(), &seq)) {
      ++segments;
    }
  }
  EXPECT_GT(segments, 1u) << "expected the log to roll segments";
  RecoveryReport report;
  EXPECT_EQ(RecoveredBytes(dir, &report), in_memory);
  EXPECT_EQ(report.segments_scanned, segments);
}

/// ------------------------------ checkpoints -----------------------------

TEST_F(DurabilityTest, CheckpointSupersedesEarlierSegments) {
  fs::path dir = FreshDir("wal_ckpt");
  Runner runner;
  auto wal = Wal::Open(dir.string());
  LIPSTICK_ASSERT_OK(wal.status());
  ProvenanceGraph graph;
  LIPSTICK_EXPECT_OK((*wal)->Attach(&graph));
  ExecutionOptions exec_options;
  exec_options.durability = wal->get();
  runner.exec->set_default_options(exec_options);

  runner.Run(0, 3, &graph);
  LIPSTICK_EXPECT_OK((*wal)->Checkpoint());
  EXPECT_EQ((*wal)->checkpoints_taken(), 1u);
  runner.Run(3, 5, &graph);
  LIPSTICK_EXPECT_OK((*wal)->Close());
  std::string in_memory = SaveBytes(&graph);

  // The checkpoint file exists and pre-checkpoint segments are deleted.
  uint64_t checkpoints = 0, min_segment = UINT64_MAX, ckpt_seq = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::string name = entry.path().filename().string();
    uint64_t seq = 0;
    if (walfmt::ParseCheckpointName(name, &seq)) {
      ++checkpoints;
      ckpt_seq = seq;
    } else if (walfmt::ParseSegmentName(name, &seq)) {
      min_segment = std::min(min_segment, seq);
    }
  }
  EXPECT_EQ(checkpoints, 1u);
  EXPECT_GE(min_segment, ckpt_seq);

  RecoveryReport report;
  EXPECT_EQ(RecoveredBytes(dir, &report), in_memory);
  EXPECT_EQ(report.checkpoint_seq, ckpt_seq);
  EXPECT_EQ(report.executions_recovered, 5u);
}

TEST_F(DurabilityTest, AutomaticCheckpointAfterThreshold) {
  fs::path dir = FreshDir("wal_auto_ckpt");
  WalOptions options;
  options.checkpoint_bytes = 512;  // tiny: checkpoint at nearly every exec
  std::string in_memory = RunWithWal(dir, 5, options);
  RecoveryReport report;
  EXPECT_EQ(RecoveredBytes(dir, &report), in_memory);
  EXPECT_GT(report.checkpoint_seq, 0u);
  EXPECT_EQ(report.executions_recovered, 5u);
}

TEST_F(DurabilityTest, ReopenedLogContinuesTheSequence) {
  fs::path dir = FreshDir("wal_reopen");
  Runner runner;
  ProvenanceGraph graph;
  {
    auto wal = Wal::Open(dir.string());
    LIPSTICK_ASSERT_OK(wal.status());
    LIPSTICK_EXPECT_OK((*wal)->Attach(&graph));
    ExecutionOptions exec_options;
    exec_options.durability = wal->get();
    runner.exec->set_default_options(exec_options);
    runner.Run(0, 3, &graph);
    LIPSTICK_EXPECT_OK((*wal)->Close());
  }
  {
    // Reopen: attaching a non-empty graph checkpoints it, so the new log
    // never depends on records it did not see.
    auto wal = Wal::Open(dir.string());
    LIPSTICK_ASSERT_OK(wal.status());
    LIPSTICK_EXPECT_OK((*wal)->Attach(&graph, runner.exec->executions_run()));
    EXPECT_EQ((*wal)->checkpoints_taken(), 1u);
    ExecutionOptions exec_options;
    exec_options.durability = wal->get();
    runner.exec->set_default_options(exec_options);
    runner.Run(3, 5, &graph);
    LIPSTICK_EXPECT_OK((*wal)->Close());
  }
  RecoveryReport report;
  EXPECT_EQ(RecoveredBytes(dir, &report), SaveBytes(&graph));
  EXPECT_EQ(report.executions_recovered, 5u);
}

/// --------------------------- torn / corrupt logs ------------------------

TEST_F(DurabilityTest, TornTailFallsBackToLastSavepoint) {
  fs::path dir = FreshDir("wal_torn");
  RunWithWal(dir, 5);
  // Tear increasing amounts off the single segment's tail. Whatever the
  // cut, recovery must yield a committed prefix identical to a clean run
  // of that many executions.
  fs::path segment;
  for (const auto& entry : fs::directory_iterator(dir)) {
    uint64_t seq = 0;
    if (walfmt::ParseSegmentName(entry.path().filename().string(), &seq)) {
      segment = entry.path();
    }
  }
  ASSERT_FALSE(segment.empty());
  uint64_t full_size = fs::file_size(segment);
  uint64_t prev_execs = 5;
  for (uint64_t cut = 3; cut < full_size - walfmt::kHeaderBytes; cut += 97) {
    fs::resize_file(segment, full_size - cut);
    RecoveryReport report;
    std::string recovered = RecoveredBytes(dir, &report);
    EXPECT_LE(report.executions_recovered, prev_execs);
    prev_execs = report.executions_recovered;
    EXPECT_EQ(recovered, ReferenceBytes(
                             static_cast<int>(report.executions_recovered)))
        << "cut=" << cut;
  }
  EXPECT_EQ(prev_execs, 0u) << "the sweep should reach the log origin";
}

TEST_F(DurabilityTest, CorruptedByteDetectedByCrc) {
  fs::path dir = FreshDir("wal_corrupt");
  RunWithWal(dir, 4);
  fs::path segment;
  for (const auto& entry : fs::directory_iterator(dir)) {
    uint64_t seq = 0;
    if (walfmt::ParseSegmentName(entry.path().filename().string(), &seq)) {
      segment = entry.path();
    }
  }
  ASSERT_FALSE(segment.empty());
  // Flip one byte in the middle of the record stream.
  uint64_t size = fs::file_size(segment);
  uint64_t at = walfmt::kHeaderBytes + (size - walfmt::kHeaderBytes) / 2;
  {
    std::fstream f(segment, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(at));
    char b = static_cast<char>(f.get());
    f.seekp(static_cast<std::streamoff>(at));
    f.put(static_cast<char>(b ^ 0x20));
  }
  RecoveryReport report;
  std::string recovered = RecoveredBytes(dir, &report);
  EXPECT_EQ(report.torn_segments, 1u);
  EXPECT_GT(report.records_discarded, 0u);
  EXPECT_LT(report.executions_recovered, 4u);
  EXPECT_EQ(recovered, ReferenceBytes(
                           static_cast<int>(report.executions_recovered)));
}

TEST_F(DurabilityTest, RepairTruncatesTornBytes) {
  fs::path dir = FreshDir("wal_repair");
  RunWithWal(dir, 3);
  fs::path segment;
  for (const auto& entry : fs::directory_iterator(dir)) {
    uint64_t seq = 0;
    if (walfmt::ParseSegmentName(entry.path().filename().string(), &seq)) {
      segment = entry.path();
    }
  }
  ASSERT_FALSE(segment.empty());
  fs::resize_file(segment, fs::file_size(segment) - 3);

  RecoveryOptions options;
  options.repair = true;
  RecoveryReport report;
  std::string first = RecoveredBytes(dir, &report, options);
  EXPECT_GT(report.bytes_truncated, 0u);
  EXPECT_EQ(report.torn_segments, 1u);

  // After repair the log scans clean and yields the same graph.
  RecoveryReport again;
  EXPECT_EQ(RecoveredBytes(dir, &again), first);
  EXPECT_EQ(again.torn_segments, 0u);
  EXPECT_EQ(again.bytes_truncated, 0u);
}

TEST_F(DurabilityTest, KeepUncommittedMarksTailDead) {
  fs::path dir = FreshDir("wal_uncommitted");
  Runner runner;
  auto wal = Wal::Open(dir.string());
  LIPSTICK_ASSERT_OK(wal.status());
  ProvenanceGraph graph;
  LIPSTICK_EXPECT_OK((*wal)->Attach(&graph));
  ExecutionOptions exec_options;
  exec_options.durability = wal->get();
  runner.exec->set_default_options(exec_options);
  runner.Run(0, 2, &graph);
  // Mutations after the last savepoint: durable in the log (Close
  // flushes), but not covered by any committed execution boundary.
  ShardWriter writer = graph.writer();
  NodeId stray = writer.WorkflowInput("uncommitted-token");
  LIPSTICK_EXPECT_OK((*wal)->Close());

  // Default mode: the uncommitted tail is discarded entirely.
  RecoveryReport committed;
  Result<ProvenanceGraph> clean = RecoverGraph(dir.string(), &committed);
  LIPSTICK_ASSERT_OK(clean.status());
  EXPECT_GT(committed.records_discarded, 0u);
  EXPECT_FALSE(clean->InGraph(stray));

  // keep_uncommitted: the tail is replayed for forensics, then marked
  // dead with the rollback machinery — visible but not alive.
  RecoveryOptions keep;
  keep.keep_uncommitted = true;
  RecoveryReport forensic;
  Result<ProvenanceGraph> kept = RecoverGraph(dir.string(), &forensic, keep);
  LIPSTICK_ASSERT_OK(kept.status());
  ASSERT_TRUE(kept->InGraph(stray));
  EXPECT_FALSE(kept->node(stray).alive());
  EXPECT_EQ(kept->num_alive(), clean->num_alive());
}

/// ------------------------- injected WAL failures ------------------------

TEST_F(DurabilityTest, ShortWriteFaultDegradesButRecovers) {
  fs::path dir = FreshDir("wal_fault_short");
  Runner runner;
  WalOptions wal_options;
  wal_options.fsync = FsyncPolicy::kOnCommit;  // flush per commit: many
                                               // fault opportunities
  auto wal = Wal::Open(dir.string(), wal_options);
  LIPSTICK_ASSERT_OK(wal.status());
  ProvenanceGraph graph;
  LIPSTICK_EXPECT_OK((*wal)->Attach(&graph));
  ExecutionOptions exec_options;
  exec_options.durability = wal->get();
  runner.exec->set_default_options(exec_options);

  FaultInjector::FaultSpec spec;
  spec.point = "wal.short_write";
  spec.skip_hits = 6;
  spec.max_fires = 1;
  FaultInjector::Global().Arm(spec);

  runner.Run(0, 4, &graph);  // execution is unaffected by the dead log
  EXPECT_FALSE((*wal)->status().ok()) << "fault should have killed the log";
  (void)(*wal)->Close();
  FaultInjector::Global().Reset();

  RecoveryReport report;
  std::string recovered = RecoveredBytes(dir, &report);
  EXPECT_LT(report.executions_recovered, 4u);
  EXPECT_EQ(recovered, ReferenceBytes(
                           static_cast<int>(report.executions_recovered)));
}

/// ------------------ property: workflowgen round trips -------------------

TEST_F(DurabilityTest, DealershipRoundTripWithAbortedInvocations) {
  // Retried node failures roll provenance back via the logged rollback
  // hooks, so the replayed graph must match the in-memory one including
  // the dead structure left by aborted attempts.
  for (int scenario = 0; scenario < 2; ++scenario) {
    FaultInjector::Global().Reset();
    fs::path dir = FreshDir(StrCat("wal_dealer_", scenario));
    workflowgen::DealershipConfig config;
    config.num_cars = 24;
    config.num_executions = 4;
    config.accept_probability = 0;  // run the full execution budget
    auto wf = workflowgen::DealershipWorkflow::Create(config);
    LIPSTICK_ASSERT_OK(wf.status());

    auto wal = Wal::Open(dir.string());
    LIPSTICK_ASSERT_OK(wal.status());
    ProvenanceGraph graph;
    LIPSTICK_EXPECT_OK((*wal)->Attach(&graph));
    ExecutionOptions exec_options;
    exec_options.durability = wal->get();
    exec_options.retry.max_attempts = 3;
    (*wf)->executor().set_default_options(exec_options);

    FaultInjector::FaultSpec spec;
    spec.point = "executor.node";
    spec.skip_hits = scenario == 0 ? 3 : 11;
    spec.max_fires = 1;
    spec.code = StatusCode::kUnavailable;
    FaultInjector::Global().Arm(spec);

    auto stats = (*wf)->Run(&graph);
    LIPSTICK_ASSERT_OK(stats.status());
    EXPECT_GE(FaultInjector::Global().fire_count("executor.node"), 1u);
    LIPSTICK_EXPECT_OK((*wal)->Close());
    FaultInjector::Global().Reset();

    std::string in_memory = SaveBytes(&graph);
    RecoveryReport report;
    EXPECT_EQ(RecoveredBytes(dir, &report), in_memory)
        << "scenario " << scenario;
    EXPECT_EQ(report.executions_recovered, stats->executions);
  }
}

TEST_F(DurabilityTest, ParallelArcticRoundTrip) {
  // Multi-worker execution appends to several shards; WAL serialization
  // preserves per-shard order, so replay reproduces the exact graph.
  fs::path dir = FreshDir("wal_arctic");
  workflowgen::ArcticConfig config;
  config.topology = workflowgen::ArcticTopology::kParallel;
  config.num_stations = 4;
  config.history_years = 2;
  config.num_workers = 3;
  auto wf = workflowgen::ArcticWorkflow::Create(config);
  LIPSTICK_ASSERT_OK(wf.status());

  auto wal = Wal::Open(dir.string());
  LIPSTICK_ASSERT_OK(wal.status());
  ProvenanceGraph graph;
  LIPSTICK_EXPECT_OK((*wal)->Attach(&graph));
  ExecutionOptions exec_options;
  exec_options.durability = wal->get();
  (*wf)->executor().set_default_options(exec_options);

  auto minimum = (*wf)->RunSeries(3, &graph);
  LIPSTICK_ASSERT_OK(minimum.status());
  LIPSTICK_EXPECT_OK((*wal)->Close());

  std::string in_memory = SaveBytes(&graph);
  RecoveryReport report;
  EXPECT_EQ(RecoveredBytes(dir, &report), in_memory);
  EXPECT_EQ(report.executions_recovered, 3u);
  EXPECT_EQ(report.torn_segments, 0u);
}

}  // namespace
}  // namespace lipstick

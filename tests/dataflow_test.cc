// Tests for the static dataflow engine (src/analysis/dataflow.h) and the
// predictive provenance cost model (src/analysis/cost_model.h): interval
// arithmetic, one broken fixture per D04xx diagnostic code (asserting the
// exact code and source location), deletion-propagation classification,
// byte-stable diagnostic rendering, concrete-mode exactness against the
// real executor, interval-mode soundness as a property over the
// WorkflowGen families, and validation of the byte formulas against
// ProvenanceGraph::ComputeMemoryStats.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/cost_model.h"
#include "analysis/dataflow.h"
#include "analysis/diagnostics.h"
#include "pig/udf.h"
#include "provenance/graph.h"
#include "test_util.h"
#include "workflow/executor.h"
#include "workflow/wfdsl.h"
#include "workflowgen/arctic.h"
#include "workflowgen/dealership.h"

namespace lipstick::analysis {
namespace {

using testing::I;
using testing::T;

/// Parses the workflow DSL source and runs the dataflow analysis.
Result<WorkflowFacts> AnalyzeSource(const std::string& source,
                                    const AnalyzeOptions& options,
                                    DiagnosticSink* sink) {
  Result<Workflow> wf = ParseWorkflow(source);
  if (!wf.ok()) return wf.status();
  return AnalyzeDataflow(*wf, options, sink);
}

/// Asserts that `sink` contains a diagnostic with `code` anchored exactly
/// at line:column.
void ExpectDiagAt(const DiagnosticSink& sink, const std::string& code,
                  int line, int column) {
  const Diagnostic* diag = sink.Find(code);
  ASSERT_NE(diag, nullptr) << "no " << code << " in:\n" << sink.RenderText();
  EXPECT_EQ(diag->loc.line, line) << sink.RenderText();
  EXPECT_EQ(diag->loc.column, column) << sink.RenderText();
}

/// The running-total example, inlined (source feeding a stateful
/// accumulator: the canonical amplifying-input workflow).
const char* kRunningTotalWf =
    "module source {\n"                               // 1
    "  input Ext(x: int);\n"                          // 2
    "  output Out(x: int);\n"                         // 3
    "  qout {\n"                                      // 4
    "    Out = FOREACH Ext GENERATE x;\n"             // 5
    "  }\n"                                           // 6
    "}\n"                                             // 7
    "module stats {\n"                                // 8
    "  input In(x: int);\n"                           // 9
    "  state Seen(x: int);\n"                         // 10
    "  output Total(t: int);\n"                       // 11
    "  qstate {\n"                                    // 12
    "    Seen = UNION Seen, In;\n"                    // 13
    "  }\n"                                           // 14
    "  qout {\n"                                      // 15
    "    G = GROUP Seen ALL;\n"                       // 16
    "    Total = FOREACH G GENERATE SUM(Seen.x) AS t;\n"  // 17
    "  }\n"                                           // 18
    "}\n"                                             // 19
    "node in = source;\n"                             // 20
    "node stats = stats;\n"                           // 21
    "edge in -> stats : Out -> In;\n";                // 22

/// A stateless pipeline exercising FILTER / JOIN / GROUP / UNION in one
/// stateful module (state only read through the JOIN).
const char* kPipelineWf =
    "module src {\n"                                  // 1
    "  input Ext(k: int, v: int);\n"                  // 2
    "  output Out(k: int, v: int);\n"                 // 3
    "  qout {\n"                                      // 4
    "    Out = FOREACH Ext GENERATE k, v;\n"          // 5
    "  }\n"                                           // 6
    "}\n"                                             // 7
    "module proc {\n"                                 // 8
    "  input In(k: int, v: int);\n"                   // 9
    "  state Hist(k: int, v: int);\n"                 // 10
    "  output Count(n: int);\n"                       // 11
    "  qstate {\n"                                    // 12
    "    Hist = UNION Hist, In;\n"                    // 13
    "  }\n"                                           // 14
    "  qout {\n"                                      // 15
    "    Big = FILTER In BY v > 2;\n"                 // 16
    "    J = JOIN Big BY k, Hist BY k;\n"             // 17
    "    G = GROUP J ALL;\n"                          // 18
    "    Count = FOREACH G GENERATE COUNT(J) AS n;\n" // 19
    "  }\n"                                           // 20
    "}\n"                                             // 21
    "node src = src;\n"                               // 22
    "node proc = proc;\n"                             // 23
    "edge src -> proc : Out -> In;\n";                // 24

Bag NumbersBag() {
  Bag bag;
  bag.Add(T({I(1), I(1)}));
  bag.Add(T({I(1), I(5)}));
  bag.Add(T({I(2), I(7)}));
  return bag;
}

/// ------------------------- interval arithmetic -------------------------

TEST(CardIntervalTest, SaturatingArithmetic) {
  CardInterval a = CardInterval::Range(2, 5);
  CardInterval b = CardInterval::Range(3, kCardInf);
  EXPECT_EQ((a + b).lo, 5u);
  EXPECT_EQ((a + b).hi, kCardInf);
  EXPECT_EQ((a * b).lo, 6u);
  EXPECT_EQ((a * b).hi, kCardInf);
  EXPECT_EQ((CardInterval::Zero() * b).hi, 0u);  // 0 * inf == 0 here
  EXPECT_EQ(a.Join(b), CardInterval::Range(2, kCardInf));
  EXPECT_EQ(a.CapAt(CardInterval::Exact(3)), CardInterval::Range(2, 3));
  EXPECT_TRUE(CardInterval::Exact(7).exact());
  EXPECT_TRUE(b.Contains(1000000));
  EXPECT_FALSE(a.Contains(6));
}

TEST(CardIntervalTest, ToStringForms) {
  EXPECT_EQ(CardInterval::Exact(7).ToString(), "7");
  EXPECT_EQ(CardInterval::Range(2, 9).ToString(), "[2, 9]");
  EXPECT_EQ(CardInterval::Unknown().ToString(), "[0, inf)");
}

/// --------------------- diagnostic fixtures (D04xx) ---------------------

DiagnosticSink AnalyzeForDiags(const std::string& source) {
  DiagnosticSink sink;
  AnalyzeOptions opt;
  Result<WorkflowFacts> facts = AnalyzeSource(source, opt, &sink);
  EXPECT_TRUE(facts.ok()) << facts.status().ToString();
  return sink;
}

TEST(DataflowDiagTest, D0401JoinKeyFamilyMismatch) {
  DiagnosticSink sink = AnalyzeForDiags(
      "module m {\n"                                               // 1
      "  input A(x: int, s: chararray);\n"                         // 2
      "  input B(y: int, t: chararray);\n"                         // 3
      "  output Out(x: int, s: chararray, y: int, t: chararray);\n"  // 4
      "  qout {\n"                                                 // 5
      "    Out = JOIN A BY x, B BY t;\n"                           // 6
      "  }\n"                                                      // 7
      "}\n"                                                        // 8
      "node n = m;\n");                                            // 9
  ExpectDiagAt(sink, "D0401", 6, 29);  // the chararray key `t`
}

TEST(DataflowDiagTest, D0402CrossBlowup) {
  DiagnosticSink sink = AnalyzeForDiags(
      "module m {\n"                       // 1
      "  input A(x: int);\n"               // 2
      "  input B(y: int);\n"               // 3
      "  output Out(x: int, y: int);\n"    // 4
      "  qout {\n"                         // 5
      "    Out = CROSS A, B;\n"            // 6
      "  }\n"                              // 7
      "}\n"                                // 8
      "node n = m;\n");                    // 9
  ExpectDiagAt(sink, "D0402", 6, 5);
}

TEST(DataflowDiagTest, D0403StaticallyEmptyRelation) {
  DiagnosticSink sink = AnalyzeForDiags(
      "module m {\n"                          // 1
      "  input A(x: int);\n"                  // 2
      "  output Out(x: int);\n"               // 3
      "  qout {\n"                            // 4
      "    E = LIMIT A 0;\n"                  // 5
      "    Out = FOREACH E GENERATE x;\n"     // 6
      "  }\n"                                 // 7
      "}\n"                                   // 8
      "node n = m;\n");                       // 9
  ExpectDiagAt(sink, "D0403", 6, 5);
}

TEST(DataflowDiagTest, D0404DeadRelation) {
  DiagnosticSink sink = AnalyzeForDiags(
      "module m {\n"                             // 1
      "  input A(x: int);\n"                     // 2
      "  output Out(x: int);\n"                  // 3
      "  qout {\n"                               // 4
      "    Dead = FOREACH A GENERATE x;\n"       // 5
      "    Out = FOREACH A GENERATE x;\n"        // 6
      "  }\n"                                    // 7
      "}\n"                                      // 8
      "node n = m;\n");                          // 9
  ExpectDiagAt(sink, "D0404", 5, 5);
}

TEST(DataflowDiagTest, D0405UnreadFieldPruned) {
  // `s` crosses the module boundary in A's declared schema but no
  // expression ever reads it before the FOREACH drops it.
  DiagnosticSink sink = AnalyzeForDiags(
      "module m {\n"                             // 1
      "  input A(x: int, s: chararray);\n"       // 2
      "  output Out(x: int);\n"                  // 3
      "  qout {\n"                               // 4
      "    Out = FOREACH A GENERATE x;\n"        // 5
      "  }\n"                                    // 6
      "}\n"                                      // 7
      "node n = m;\n");                          // 8
  ExpectDiagAt(sink, "D0405", 5, 5);
}

TEST(DataflowDiagTest, D0405SuppressedWhenFieldIsRead) {
  // Same shape, but `s` is consumed by a FILTER first: no finding.
  DiagnosticSink sink = AnalyzeForDiags(
      "module m {\n"
      "  input A(x: int, s: chararray);\n"
      "  output Out(x: int);\n"
      "  qout {\n"
      "    F = FILTER A BY s == s;\n"
      "    Out = FOREACH F GENERATE x;\n"
      "  }\n"
      "}\n"
      "node n = m;\n");
  EXPECT_FALSE(sink.Has("D0405")) << sink.RenderText();
}

TEST(DataflowDiagTest, D0406ConstantCondition) {
  DiagnosticSink sink = AnalyzeForDiags(
      "module m {\n"                          // 1
      "  input A(x: int);\n"                  // 2
      "  output Out(x: int);\n"               // 3
      "  qout {\n"                            // 4
      "    Out = FILTER A BY 1 > 0;\n"        // 5
      "  }\n"                                 // 6
      "}\n"                                   // 7
      "node n = m;\n");                       // 8
  ExpectDiagAt(sink, "D0406", 5, 25);  // the constant condition's operator
}

TEST(DataflowDiagTest, D0407MixedComparison) {
  DiagnosticSink sink = AnalyzeForDiags(
      "module m {\n"                                 // 1
      "  input A(x: int, s: chararray);\n"           // 2
      "  output Out(x: int, s: chararray);\n"        // 3
      "  qout {\n"                                   // 4
      "    Out = FILTER A BY x == s;\n"              // 5
      "  }\n"                                        // 6
      "}\n"                                          // 7
      "node n = m;\n");                              // 8
  ExpectDiagAt(sink, "D0407", 5, 25);  // the comparison's operator
}

TEST(DataflowDiagTest, D0408AmplifyingInputIsANote) {
  DiagnosticSink sink = AnalyzeForDiags(kRunningTotalWf);
  const Diagnostic* diag = sink.Find("D0408");
  ASSERT_NE(diag, nullptr) << sink.RenderText();
  // kNote severity keeps the lint gate green on stateful-but-correct
  // workflows: amplification is a property, not a defect.
  EXPECT_EQ(diag->severity, Severity::kNote);
  EXPECT_EQ(sink.CountAtLeast(Severity::kWarning), 0u) << sink.RenderText();
}

/// -------------------- deletion-propagation classification --------------

TEST(DataflowDeletionTest, StateAccumulationIsAmplifying) {
  DiagnosticSink sink;
  AnalyzeOptions opt;
  opt.executions = 3;
  Result<WorkflowFacts> facts = AnalyzeSource(kRunningTotalWf, opt, &sink);
  LIPSTICK_ASSERT_OK(facts.status());
  ASSERT_EQ(facts->deletion.size(), 1u);
  EXPECT_EQ(facts->deletion[0].node_id, "in");
  EXPECT_EQ(facts->deletion[0].relation, "Ext");
  EXPECT_TRUE(facts->deletion[0].amplifying);
  EXPECT_TRUE(facts->deletion[0].reaches_state);
}

TEST(DataflowDeletionTest, PassThroughInputIsSafe) {
  DiagnosticSink sink;
  AnalyzeOptions opt;
  Result<WorkflowFacts> facts = AnalyzeSource(
      "module m {\n"
      "  input A(x: int);\n"
      "  output Out(x: int);\n"
      "  qout {\n"
      "    Out = FILTER A BY x > 0;\n"
      "  }\n"
      "}\n"
      "node n = m;\n",
      opt, &sink);
  LIPSTICK_ASSERT_OK(facts.status());
  ASSERT_EQ(facts->deletion.size(), 1u);
  EXPECT_FALSE(facts->deletion[0].amplifying);
  EXPECT_FALSE(facts->deletion[0].reaches_state);
  EXPECT_FALSE(sink.Has("D0408"));
}

/// -------------------- deterministic diagnostic rendering ---------------

TEST(DiagnosticDeterminismTest, RenderingIsStableUnderEmissionOrder) {
  // Two sinks with the same findings reported in opposite orders, spanning
  // multiple files, lines, and tie-broken codes.
  std::vector<Diagnostic> diags = {
      {"D0402", Severity::kWarning, {10, 5}, "second file", "", "b.wf"},
      {"D0401", Severity::kWarning, {10, 5}, "tie on position", "", "b.wf"},
      {"L0101", Severity::kError, {3, 9}, "first file", "a note", "a.wf"},
      {"W0201", Severity::kNote, {3, 2}, "earlier column", "", "a.wf"},
      {"G0301", Severity::kWarning, {0, 0}, "no location", "", ""},
  };
  DiagnosticSink forward, backward;
  for (const Diagnostic& d : diags) forward.Report(d);
  for (auto it = diags.rbegin(); it != diags.rend(); ++it) {
    backward.Report(*it);
  }
  EXPECT_EQ(forward.RenderText("z.wf"), backward.RenderText("z.wf"));
  EXPECT_EQ(forward.RenderJson("z.wf"), backward.RenderJson("z.wf"));

  // (file, line, column, code) order. The unlocated finding has an empty
  // `file`, which sorts before "a.wf" (the fallback name is applied only
  // at render time); within b.wf the code breaks the position tie.
  std::string text = forward.RenderText("z.wf");
  size_t z = text.find("z.wf");
  size_t a = text.find("a.wf:3:2");
  size_t a2 = text.find("a.wf:3:9");
  size_t b = text.find("D0401");
  size_t b2 = text.find("D0402");
  ASSERT_NE(z, std::string::npos) << text;
  EXPECT_LT(z, a) << text;
  EXPECT_LT(a, a2) << text;
  EXPECT_LT(a2, b) << text;
  EXPECT_LT(b, b2) << text;
}

/// -------------------- concrete mode: exact predictions -----------------

class ConcreteExactnessTest : public ::testing::Test {
 protected:
  /// Runs `execs` executions of the parsed workflow with `ext` bound to
  /// `input_node`.`input_rel`, tracking provenance; then analyzes the same
  /// workflow with the same inputs and compares.
  void RunAndAnalyze(const char* source, const std::string& input_node,
                     const std::string& input_rel, int execs) {
    Result<Workflow> wf = ParseWorkflow(source);
    LIPSTICK_ASSERT_OK(wf.status());
    WorkflowExecutor exec(&*wf, nullptr);
    LIPSTICK_ASSERT_OK(exec.Initialize());
    WorkflowInputs inputs;
    inputs[input_node][input_rel] = NumbersBag();
    for (int e = 0; e < execs; ++e) {
      LIPSTICK_ASSERT_OK(exec.Execute(inputs, &graph_).status());
    }
    graph_.Seal();

    AnalyzeOptions opt;
    opt.executions = execs;
    opt.inputs[input_node][input_rel] = NumbersBag();
    DiagnosticSink sink;
    Result<WorkflowFacts> facts = AnalyzeDataflow(*wf, opt, &sink);
    LIPSTICK_ASSERT_OK(facts.status());
    EXPECT_TRUE(facts->concrete) << "fell back to interval mode: "
                                 << (facts->notes.empty() ? ""
                                                          : facts->notes[0]);
    cost_ = PredictCost(*facts);
  }

  ProvenanceGraph graph_;
  CostReport cost_;
};

TEST_F(ConcreteExactnessTest, RunningTotalCountsAreExact) {
  RunAndAnalyze(kRunningTotalWf, "in", "Ext", 3);
  ASSERT_TRUE(cost_.nodes.exact());
  ASSERT_TRUE(cost_.edges.exact());
  EXPECT_EQ(cost_.nodes.lo, graph_.num_nodes());
  EXPECT_EQ(cost_.edges.lo, graph_.num_edges());
}

TEST_F(ConcreteExactnessTest, PipelineCountsAreExact) {
  RunAndAnalyze(kPipelineWf, "src", "Ext", 3);
  ASSERT_TRUE(cost_.nodes.exact());
  ASSERT_TRUE(cost_.edges.exact());
  EXPECT_EQ(cost_.nodes.lo, graph_.num_nodes());
  EXPECT_EQ(cost_.edges.lo, graph_.num_edges());
}

TEST_F(ConcreteExactnessTest, PredictedBytesWithin15Percent) {
  RunAndAnalyze(kRunningTotalWf, "in", "Ext", 3);
  ProvenanceGraph::MemoryStats actual = graph_.ComputeMemoryStats();
  uint64_t total = actual.total();
  ASSERT_GT(total, 0u);
  uint64_t predicted = cost_.est_bytes;
  double err = predicted > total ? static_cast<double>(predicted - total)
                                 : static_cast<double>(total - predicted);
  EXPECT_LE(err / static_cast<double>(total), 0.15)
      << "predicted " << predicted << " bytes, actual " << total;
}

/// -------------------- interval mode: soundness -------------------------

TEST(IntervalSoundnessTest, PipelineIntervalsContainGroundTruth) {
  Result<Workflow> wf = ParseWorkflow(kPipelineWf);
  LIPSTICK_ASSERT_OK(wf.status());
  WorkflowExecutor exec(&*wf, nullptr);
  LIPSTICK_ASSERT_OK(exec.Initialize());
  WorkflowInputs inputs;
  inputs["src"]["Ext"] = NumbersBag();
  ProvenanceGraph graph;
  for (int e = 0; e < 3; ++e) {
    LIPSTICK_ASSERT_OK(exec.Execute(inputs, &graph).status());
  }
  graph.Seal();

  // Same inputs, but forced into the interval domain: the transfer
  // functions must produce sound over-approximations of the run above.
  AnalyzeOptions opt;
  opt.executions = 3;
  opt.force_interval = true;
  opt.inputs["src"]["Ext"] = NumbersBag();
  DiagnosticSink sink;
  Result<WorkflowFacts> facts = AnalyzeDataflow(*wf, opt, &sink);
  LIPSTICK_ASSERT_OK(facts.status());
  EXPECT_FALSE(facts->concrete);
  CostReport cost = PredictCost(*facts);
  EXPECT_TRUE(cost.nodes.Contains(graph.num_nodes()))
      << cost.nodes.ToString() << " vs " << graph.num_nodes();
  EXPECT_TRUE(cost.edges.Contains(graph.num_edges()))
      << cost.edges.ToString() << " vs " << graph.num_edges();
}

struct ArcticCase {
  workflowgen::ArcticTopology topology;
  uint64_t seed;
};

class ArcticSoundnessTest : public ::testing::TestWithParam<ArcticCase> {};

TEST_P(ArcticSoundnessTest, IntervalBoundsContainRealRun) {
  workflowgen::ArcticConfig cfg;
  cfg.topology = GetParam().topology;
  cfg.num_stations = 4;
  cfg.history_years = 1;
  cfg.seed = GetParam().seed;
  auto arctic = workflowgen::ArcticWorkflow::Create(cfg);
  LIPSTICK_ASSERT_OK(arctic.status());
  ProvenanceGraph graph;
  LIPSTICK_ASSERT_OK((*arctic)->RunSeries(2, &graph).status());
  graph.Seal();

  // No sample inputs: the analyzer only knows the workflow text, so its
  // intervals must still contain whatever the real run produced.
  AnalyzeOptions opt;
  opt.executions = 2;
  opt.udfs = &(*arctic)->udfs();
  DiagnosticSink sink;
  Result<WorkflowFacts> facts =
      AnalyzeDataflow((*arctic)->workflow(), opt, &sink);
  LIPSTICK_ASSERT_OK(facts.status());
  CostReport cost = PredictCost(*facts);
  EXPECT_TRUE(cost.nodes.Contains(graph.num_nodes()))
      << cost.nodes.ToString() << " vs " << graph.num_nodes();
  EXPECT_TRUE(cost.edges.Contains(graph.num_edges()))
      << cost.edges.ToString() << " vs " << graph.num_edges();
  EXPECT_TRUE(cost.total_bytes.Contains(graph.ComputeMemoryStats().total()))
      << cost.total_bytes.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, ArcticSoundnessTest,
    ::testing::Values(
        ArcticCase{workflowgen::ArcticTopology::kSerial, 7},
        ArcticCase{workflowgen::ArcticTopology::kSerial, 99},
        ArcticCase{workflowgen::ArcticTopology::kParallel, 7},
        ArcticCase{workflowgen::ArcticTopology::kDense, 7}));

/// -------------------- byte formulas vs ComputeMemoryStats --------------

TEST(CostFormulaTest, MeasuredEmissionReproducesMemoryStats) {
  // A mid-sized dealership run gives a graph with wide nodes, values,
  // invocation records, and a few thousand interned strings. Profiling it
  // with MeasureEmission and pushing the result through the predictor's
  // byte formulas must land on ComputeMemoryStats' answer.
  workflowgen::DealershipConfig cfg;
  cfg.num_cars = 160;
  cfg.num_executions = 3;
  cfg.seed = 11;
  auto dealership = workflowgen::DealershipWorkflow::Create(cfg);
  LIPSTICK_ASSERT_OK(dealership.status());
  ProvenanceGraph graph;
  LIPSTICK_ASSERT_OK((*dealership)->Run(&graph).status());
  graph.Seal();

  Emission em = MeasureEmission(graph);
  std::vector<InvocationProfile> invs = MeasureInvocations(graph);
  CostReport rep = PredictFromEmission(em, invs, /*concrete=*/true);
  ProvenanceGraph::MemoryStats actual = graph.ComputeMemoryStats();

  EXPECT_EQ(em.nodes.lo, graph.num_nodes());
  // Fixed-width columns, CSR, and invocation records mirror the exact
  // capacity model, so those components must match to the byte.
  EXPECT_EQ(rep.column_bytes.lo, actual.column_bytes);
  EXPECT_EQ(rep.csr_bytes.lo, actual.csr_bytes);
  EXPECT_EQ(rep.invocation_bytes.lo, actual.invocation_bytes);
  // The arena's capacity is growth-history dependent (bulk inserts), so
  // the model brackets it instead of pinning it.
  EXPECT_TRUE(rep.edge_arena_bytes.Contains(actual.edge_arena_bytes))
      << rep.edge_arena_bytes.ToString() << " vs "
      << actual.edge_arena_bytes;
  EXPECT_EQ(rep.value_bytes.lo, actual.value_bytes);
  // The interner model approximates hash-table overhead; total must stay
  // within the 15% accuracy budget.
  uint64_t total = actual.total();
  uint64_t predicted = rep.total_bytes.lo;
  double err = predicted > total ? static_cast<double>(predicted - total)
                                 : static_cast<double>(total - predicted);
  EXPECT_LE(err / static_cast<double>(total), 0.15)
      << "predicted " << predicted << " bytes, actual " << total;
}

/// -------------------- facts sanity on interval mode --------------------

TEST(IntervalFactsTest, RunningTotalFactsShapes) {
  DiagnosticSink sink;
  AnalyzeOptions opt;
  opt.executions = 2;
  Result<WorkflowFacts> facts = AnalyzeSource(kRunningTotalWf, opt, &sink);
  LIPSTICK_ASSERT_OK(facts.status());
  EXPECT_FALSE(facts->concrete);
  ASSERT_TRUE(facts->relations.count("stats"));
  const auto& stats = facts->relations.at("stats");
  ASSERT_TRUE(stats.count("Total"));
  // GROUP ALL over a relation that may be empty yields at most one group.
  EXPECT_LE(stats.at("Total").card.total.hi, 1u);
  ASSERT_TRUE(stats.at("Total").schema != nullptr);
  EXPECT_EQ(stats.at("Total").schema->num_fields(), 1u);
  // Two executions of two modules were profiled.
  EXPECT_EQ(facts->invocations.size(), 4u);
}

}  // namespace
}  // namespace lipstick::analysis

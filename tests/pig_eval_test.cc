#include <gtest/gtest.h>

#include "pig/interpreter.h"
#include "pig/parser.h"
#include "pig/udf.h"
#include "test_util.h"

namespace lipstick::pig {
namespace {

using ::lipstick::testing::B;
using ::lipstick::testing::Column;
using ::lipstick::testing::D;
using ::lipstick::testing::I;
using ::lipstick::testing::MakeRelation;
using ::lipstick::testing::MakeSchema;
using ::lipstick::testing::RunPig;
using ::lipstick::testing::S;
using ::lipstick::testing::T;

class EvalTest : public ::testing::Test {
 protected:
  EvalTest() {
    env_.Bind("Cars",
              MakeRelation("Cars",
                           MakeSchema({{"CarId", FieldType::Int()},
                                       {"Model", FieldType::String()}}),
                           {T({I(1), S("Accord")}), T({I(2), S("Civic")}),
                            T({I(3), S("Civic")})}));
    env_.Bind("Requests",
              MakeRelation("Requests",
                           MakeSchema({{"UserId", FieldType::String()},
                                       {"BidId", FieldType::Int()},
                                       {"Model", FieldType::String()}}),
                           {T({S("P1"), I(1), S("Civic")})}));
  }

  pig::Environment env_;
};

TEST_F(EvalTest, ForEachProjection) {
  auto rel = RunPig("M = FOREACH Cars GENERATE Model;", &env_, "M");
  LIPSTICK_ASSERT_OK(rel.status());
  EXPECT_EQ(rel->schema->ToString(), "(Model:chararray)");
  EXPECT_EQ(rel->bag.size(), 3u);  // bag semantics keep duplicates
  EXPECT_EQ(rel->bag.ToString(), "{('Accord'),('Civic'),('Civic')}");
}

TEST_F(EvalTest, ForEachComputedFieldsAndNaming) {
  auto rel = RunPig(
      "X = FOREACH Cars GENERATE CarId * 10 AS Big, CarId, $1;", &env_, "X");
  LIPSTICK_ASSERT_OK(rel.status());
  EXPECT_EQ(rel->schema->field(0).name, "Big");
  EXPECT_EQ(rel->schema->field(1).name, "CarId");
  EXPECT_EQ(rel->schema->field(2).name, "Model");  // $1 inherits source name
  EXPECT_EQ(Column(rel->bag, 0)[0].int_value(), 10);
}

TEST_F(EvalTest, FilterSelectsMatching) {
  auto rel =
      RunPig("C = FILTER Cars BY Model == 'Civic';", &env_, "C");
  LIPSTICK_ASSERT_OK(rel.status());
  EXPECT_EQ(rel->bag.size(), 2u);
  auto none = RunPig("N = FILTER Cars BY CarId > 100;", &env_, "N");
  EXPECT_EQ(none->bag.size(), 0u);
}

TEST_F(EvalTest, FilterConditionMustBeBoolean) {
  auto rel = RunPig("C = FILTER Cars BY CarId + 1;", &env_, "C");
  EXPECT_EQ(rel.status().code(), StatusCode::kTypeError);
}

TEST_F(EvalTest, GroupNestsTuples) {
  auto rel = RunPig("G = GROUP Cars BY Model;", &env_, "G");
  LIPSTICK_ASSERT_OK(rel.status());
  EXPECT_EQ(rel->bag.size(), 2u);  // Accord, Civic
  // Schema: group key + bag named after the input relation.
  EXPECT_EQ(rel->schema->field(0).name, "group");
  EXPECT_EQ(rel->schema->field(1).name, "Cars");
  EXPECT_EQ(rel->schema->field(1).type.kind(), FieldType::Kind::kBag);
  for (const AnnotatedTuple& t : rel->bag) {
    if (t.tuple.at(0).string_value() == "Civic") {
      EXPECT_EQ(t.tuple.at(1).bag()->size(), 2u);
    } else {
      EXPECT_EQ(t.tuple.at(1).bag()->size(), 1u);
    }
  }
}

TEST_F(EvalTest, GroupAllMakesOneGroup) {
  auto rel = RunPig(
      "G = GROUP Cars ALL;\n"
      "N = FOREACH G GENERATE group, COUNT(Cars) AS n;",
      &env_, "N");
  LIPSTICK_ASSERT_OK(rel.status());
  ASSERT_EQ(rel->bag.size(), 1u);
  EXPECT_EQ(rel->bag.at(0).tuple.at(0).string_value(), "all");
  EXPECT_EQ(rel->bag.at(0).tuple.at(1).int_value(), 3);
}

TEST_F(EvalTest, GroupByMultipleKeysProducesTupleKey) {
  auto rel = RunPig("G = GROUP Cars BY (Model, CarId);", &env_, "G");
  LIPSTICK_ASSERT_OK(rel.status());
  EXPECT_EQ(rel->bag.size(), 3u);
  EXPECT_TRUE(rel->bag.at(0).tuple.at(0).is_tuple());
}

TEST_F(EvalTest, CogroupCombinesInputs) {
  auto rel = RunPig("C = COGROUP Cars BY Model, Requests BY Model;", &env_,
                    "C");
  LIPSTICK_ASSERT_OK(rel.status());
  // Groups: Accord (1 car, 0 requests), Civic (2 cars, 1 request).
  ASSERT_EQ(rel->bag.size(), 2u);
  for (const AnnotatedTuple& t : rel->bag) {
    if (t.tuple.at(0).string_value() == "Civic") {
      EXPECT_EQ(t.tuple.at(1).bag()->size(), 2u);
      EXPECT_EQ(t.tuple.at(2).bag()->size(), 1u);
    } else {
      EXPECT_EQ(t.tuple.at(1).bag()->size(), 1u);
      EXPECT_EQ(t.tuple.at(2).bag()->size(), 0u);
    }
  }
}

TEST_F(EvalTest, JoinMatchesAndQualifiesFields) {
  auto rel =
      RunPig("J = JOIN Cars BY Model, Requests BY Model;", &env_, "J");
  LIPSTICK_ASSERT_OK(rel.status());
  EXPECT_EQ(rel->bag.size(), 2u);  // two Civics x one request
  EXPECT_TRUE(rel->schema->FindField("Cars::CarId").has_value());
  EXPECT_TRUE(rel->schema->FindField("Requests::UserId").has_value());
  // Unqualified "Model" is ambiguous after the join.
  EXPECT_FALSE(rel->schema->FindField("Model").has_value());
}

TEST_F(EvalTest, JoinOnMultipleKeys) {
  env_.Bind("L", MakeRelation("L",
                              MakeSchema({{"a", FieldType::Int()},
                                          {"b", FieldType::Int()}}),
                              {T({I(1), I(2)}), T({I(1), I(3)})}));
  env_.Bind("R", MakeRelation("R",
                              MakeSchema({{"c", FieldType::Int()},
                                          {"d", FieldType::Int()}}),
                              {T({I(1), I(2)}), T({I(2), I(2)})}));
  auto rel = RunPig("J = JOIN L BY (a, b), R BY (c, d);", &env_, "J");
  LIPSTICK_ASSERT_OK(rel.status());
  EXPECT_EQ(rel->bag.size(), 1u);
}

TEST_F(EvalTest, JoinProducesCrossProductPerKey) {
  env_.Bind("Dup", MakeRelation("Dup",
                                MakeSchema({{"Model", FieldType::String()}}),
                                {T({S("Civic")}), T({S("Civic")})}));
  auto rel = RunPig("J = JOIN Cars BY Model, Dup BY Model;", &env_, "J");
  LIPSTICK_ASSERT_OK(rel.status());
  EXPECT_EQ(rel->bag.size(), 4u);  // 2 civic cars x 2 dup rows
}

TEST_F(EvalTest, CrossProduct) {
  auto rel = RunPig("X = CROSS Cars, Requests;", &env_, "X");
  LIPSTICK_ASSERT_OK(rel.status());
  EXPECT_EQ(rel->bag.size(), 3u);
  EXPECT_TRUE(rel->schema->FindField("Cars::CarId").has_value());
  // Cross with an empty relation is empty.
  env_.Bind("E", MakeRelation("E", MakeSchema({{"x", FieldType::Int()}}), {}));
  auto empty = RunPig("X = CROSS Cars, E;", &env_, "X");
  EXPECT_EQ(empty->bag.size(), 0u);
}

TEST_F(EvalTest, UnionKeepsDuplicates) {
  auto rel = RunPig("U = UNION Cars, Cars;", &env_, "U");
  LIPSTICK_ASSERT_OK(rel.status());
  EXPECT_EQ(rel->bag.size(), 6u);
}

TEST_F(EvalTest, UnionRequiresCompatibleSchemas) {
  auto rel = RunPig("U = UNION Cars, Requests;", &env_, "U");
  EXPECT_EQ(rel.status().code(), StatusCode::kTypeError);
}

TEST_F(EvalTest, DistinctRemovesDuplicates) {
  auto rel = RunPig(
      "M = FOREACH Cars GENERATE Model;\n"
      "DM = DISTINCT M;",
      &env_, "DM");
  LIPSTICK_ASSERT_OK(rel.status());
  EXPECT_EQ(rel->bag.size(), 2u);
}

TEST_F(EvalTest, OrderBySortsStably) {
  auto rel = RunPig("O = ORDER Cars BY Model, CarId DESC;", &env_, "O");
  LIPSTICK_ASSERT_OK(rel.status());
  EXPECT_EQ(rel->bag.at(0).tuple.at(1).string_value(), "Accord");
  EXPECT_EQ(rel->bag.at(1).tuple.at(0).int_value(), 3);  // Civic, id desc
  EXPECT_EQ(rel->bag.at(2).tuple.at(0).int_value(), 2);
}

TEST_F(EvalTest, LimitTruncates) {
  auto rel = RunPig(
      "O = ORDER Cars BY CarId;\n"
      "L = LIMIT O 2;",
      &env_, "L");
  LIPSTICK_ASSERT_OK(rel.status());
  EXPECT_EQ(rel->bag.size(), 2u);
  auto all = RunPig("L2 = LIMIT Cars 99;", &env_, "L2");
  EXPECT_EQ(all->bag.size(), 3u);
}

TEST_F(EvalTest, AggregatesOverGroups) {
  auto rel = RunPig(
      "G = GROUP Cars BY Model;\n"
      "A = FOREACH G GENERATE group AS Model, COUNT(Cars) AS n,"
      "    MIN(Cars.CarId) AS lo, MAX(Cars.CarId) AS hi,"
      "    SUM(Cars.CarId) AS total, AVG(Cars.CarId) AS mean;",
      &env_, "A");
  LIPSTICK_ASSERT_OK(rel.status());
  for (const AnnotatedTuple& t : rel->bag) {
    if (t.tuple.at(0).string_value() == "Civic") {
      EXPECT_EQ(t.tuple.at(1).int_value(), 2);
      EXPECT_EQ(t.tuple.at(2).int_value(), 2);
      EXPECT_EQ(t.tuple.at(3).int_value(), 3);
      EXPECT_EQ(t.tuple.at(4).int_value(), 5);
      EXPECT_DOUBLE_EQ(t.tuple.at(5).double_value(), 2.5);
    }
  }
}

TEST_F(EvalTest, AggregateOverEmptyBag) {
  env_.Bind("E", MakeRelation("E", MakeSchema({{"x", FieldType::Int()}}), {}));
  auto rel = RunPig(
      "C = COGROUP Cars BY Model, E BY x;\n"
      "A = FOREACH C GENERATE group, COUNT(E) AS n, SUM(E.x) AS s,"
      "    MIN(E.x) AS lo;",
      &env_, "A");
  LIPSTICK_ASSERT_OK(rel.status());
  for (const AnnotatedTuple& t : rel->bag) {
    EXPECT_EQ(t.tuple.at(1).int_value(), 0);   // COUNT {} = 0
    EXPECT_EQ(t.tuple.at(2).int_value(), 0);   // SUM {} = 0
    EXPECT_TRUE(t.tuple.at(3).is_null());      // MIN {} = null
  }
}

TEST_F(EvalTest, AggregateTypeErrors) {
  auto r1 = RunPig("A = FOREACH Cars GENERATE COUNT(CarId);", &env_, "A");
  EXPECT_EQ(r1.status().code(), StatusCode::kTypeError);  // not a bag
  auto r2 = RunPig(
      "G = GROUP Cars BY Model;\n"
      "A = FOREACH G GENERATE SUM(Cars) AS s;",
      &env_, "A");
  EXPECT_EQ(r2.status().code(), StatusCode::kTypeError);  // 2-attribute bag
  auto r3 = RunPig(
      "G = GROUP Cars BY Model;\n"
      "A = FOREACH G GENERATE SUM(Cars.Model) AS s;",
      &env_, "A");
  EXPECT_EQ(r3.status().code(), StatusCode::kTypeError);  // non-numeric
}

TEST_F(EvalTest, ArithmeticSemantics) {
  env_.Bind("One",
            MakeRelation("One", MakeSchema({{"x", FieldType::Int()}}),
                         {T({I(7)})}));
  auto rel = RunPig(
      "A = FOREACH One GENERATE x + 1 AS a, x - 1 AS b, x * 2 AS c,"
      "    x / 2 AS d, x % 2 AS e, x / 2.0 AS f, -x AS g, x / 0 AS z;",
      &env_, "A");
  LIPSTICK_ASSERT_OK(rel.status());
  const Tuple& t = rel->bag.at(0).tuple;
  EXPECT_EQ(t.at(0).int_value(), 8);
  EXPECT_EQ(t.at(1).int_value(), 6);
  EXPECT_EQ(t.at(2).int_value(), 14);
  EXPECT_EQ(t.at(3).int_value(), 3);  // Pig int division
  EXPECT_EQ(t.at(4).int_value(), 1);
  EXPECT_DOUBLE_EQ(t.at(5).double_value(), 3.5);
  EXPECT_EQ(t.at(6).int_value(), -7);
  EXPECT_TRUE(t.at(7).is_null());  // division by zero -> null
}

TEST_F(EvalTest, ComparisonAndLogic) {
  auto rel = RunPig(
      "A = FILTER Cars BY (CarId >= 2 AND CarId <= 3) OR Model == 'Accord';",
      &env_, "A");
  LIPSTICK_ASSERT_OK(rel.status());
  EXPECT_EQ(rel->bag.size(), 3u);
  auto ne = RunPig("N = FILTER Cars BY Model != 'Civic';", &env_, "N");
  EXPECT_EQ(ne->bag.size(), 1u);
}

TEST_F(EvalTest, FlattenExpandsNestedBags) {
  auto rel = RunPig(
      "G = GROUP Cars BY Model;\n"
      "F = FOREACH G GENERATE group AS Model, FLATTEN(Cars);",
      &env_, "F");
  LIPSTICK_ASSERT_OK(rel.status());
  // Flatten restores one row per car, with the group key prefixed.
  EXPECT_EQ(rel->bag.size(), 3u);
  EXPECT_EQ(rel->schema->num_fields(), 3u);  // Model, CarId, Model
  // FLATTEN of an empty bag eliminates the tuple.
  env_.Bind("E", MakeRelation("E", MakeSchema({{"x", FieldType::Int()}}), {}));
  auto empty = RunPig(
      "C = COGROUP Cars BY Model, E BY x;\n"
      "F = FOREACH C GENERATE group, FLATTEN(E);",
      &env_, "F");
  LIPSTICK_ASSERT_OK(empty.status());
  EXPECT_EQ(empty->bag.size(), 0u);
}

TEST_F(EvalTest, UdfScalarAndBag) {
  UdfRegistry udfs;
  LIPSTICK_ASSERT_OK(udfs.Register(
      "Twice",
      [](const std::vector<Value>& args) -> Result<Value> {
        return Value::Int(args[0].int_value() * 2);
      },
      FieldType::Int()));
  auto rel = RunPig("A = FOREACH Cars GENERATE Twice(CarId) AS d;", &env_,
                    "A", &udfs);
  LIPSTICK_ASSERT_OK(rel.status());
  EXPECT_EQ(Column(rel->bag, 0)[2].int_value(), 6);
}

TEST_F(EvalTest, UdfReturningBagWithFlatten) {
  UdfRegistry udfs;
  SchemaPtr out_schema = MakeSchema({{"v", FieldType::Int()}});
  LIPSTICK_ASSERT_OK(udfs.Register(
      "Explode",
      pig::UdfEntry{[](const std::vector<Value>& args) -> Result<Value> {
                      auto bag = std::make_shared<Bag>();
                      for (int64_t i = 0; i < args[0].int_value(); ++i) {
                        bag->Add(Tuple({Value::Int(i)}));
                      }
                      return Value::OfBag(bag);
                    },
                    [out_schema](const std::vector<FieldType>&) {
                      return Result<FieldType>(FieldType::Bag(out_schema));
                    }}));
  auto rel = RunPig("A = FOREACH Cars GENERATE FLATTEN(Explode(CarId));",
                    &env_, "A", &udfs);
  LIPSTICK_ASSERT_OK(rel.status());
  EXPECT_EQ(rel->bag.size(), 1u + 2u + 3u);
}

TEST_F(EvalTest, UnknownFunctionAndRelationErrors) {
  auto r1 = RunPig("A = FOREACH Cars GENERATE Nope(CarId);", &env_, "A");
  EXPECT_EQ(r1.status().code(), StatusCode::kTypeError);
  auto r2 = RunPig("A = FILTER Ghost BY true;", &env_, "A");
  EXPECT_EQ(r2.status().code(), StatusCode::kExecutionError);
  auto r3 = RunPig("A = FOREACH Cars GENERATE Price;", &env_, "A");
  EXPECT_FALSE(r3.ok());
}

TEST_F(EvalTest, RebindingAccumulatesState) {
  auto rel = RunPig(
      "N = FOREACH Cars GENERATE CarId;\n"
      "N = UNION N, N;\n"
      "N = UNION N, N;\n",
      &env_, "N");
  LIPSTICK_ASSERT_OK(rel.status());
  EXPECT_EQ(rel->bag.size(), 12u);
}

TEST_F(EvalTest, AnalyzeProgramInfersSchemas) {
  std::map<std::string, SchemaPtr> schemas;
  schemas["Cars"] = MakeSchema(
      {{"CarId", FieldType::Int()}, {"Model", FieldType::String()}});
  auto program = ParseProgram(
      "G = GROUP Cars BY Model;\n"
      "A = FOREACH G GENERATE group AS Model, COUNT(Cars) AS n;");
  LIPSTICK_ASSERT_OK(program.status());
  auto result = AnalyzeProgram(*program, schemas, nullptr);
  LIPSTICK_ASSERT_OK(result.status());
  EXPECT_EQ(result->at("A")->ToString(), "(Model:chararray, n:int)");
  EXPECT_EQ(result->at("G")->field(1).type.kind(), FieldType::Kind::kBag);
}

TEST_F(EvalTest, AnalyzeProgramDetectsErrorsWithoutData) {
  std::map<std::string, SchemaPtr> schemas;
  schemas["Cars"] = MakeSchema({{"CarId", FieldType::Int()}});
  auto program = ParseProgram("A = FOREACH Cars GENERATE Missing;");
  LIPSTICK_ASSERT_OK(program.status());
  EXPECT_FALSE(AnalyzeProgram(*program, schemas, nullptr).ok());
}

TEST_F(EvalTest, MultipleFlattensCrossProduct) {
  // Two FLATTENed bags in one GENERATE expand to their cross product.
  auto rel = RunPig(
      "GC = GROUP Cars BY Model;\n"
      "GR = GROUP Requests BY Model;\n"
      "J = JOIN GC BY group, GR BY group;\n"
      "F = FOREACH J GENERATE FLATTEN(Cars), FLATTEN(Requests);",
      &env_, "F");
  LIPSTICK_ASSERT_OK(rel.status());
  // Civic: 2 cars x 1 request = 2 rows; Accord group has no request.
  EXPECT_EQ(rel->bag.size(), 2u);
  EXPECT_EQ(rel->schema->num_fields(), 5u);
}

TEST_F(EvalTest, ThreeWayJoin) {
  env_.Bind("Colors",
            MakeRelation("Colors",
                         MakeSchema({{"Model", FieldType::String()},
                                     {"Color", FieldType::String()}}),
                         {T({S("Civic"), S("red")}),
                          T({S("Civic"), S("blue")})}));
  auto rel = RunPig(
      "J = JOIN Cars BY Model, Requests BY Model, Colors BY Model;", &env_,
      "J");
  LIPSTICK_ASSERT_OK(rel.status());
  // 2 civic cars x 1 request x 2 colors.
  EXPECT_EQ(rel->bag.size(), 4u);
  EXPECT_EQ(rel->schema->num_fields(), 2u + 3u + 2u);
}

TEST_F(EvalTest, GroupOfGroupNesting) {
  // Grouping a grouped relation: the nested bag itself contains bags.
  auto rel = RunPig(
      "G = GROUP Cars BY Model;\n"
      "C = FOREACH G GENERATE group AS Model, COUNT(Cars) AS n;\n"
      "G2 = GROUP C BY n;\n"
      "S = FOREACH G2 GENERATE group AS n, COUNT(C) AS models;",
      &env_, "S");
  LIPSTICK_ASSERT_OK(rel.status());
  // Counts: Accord->1 car, Civic->2 cars; so one model each per count.
  EXPECT_EQ(rel->bag.ToString(), "{(1,1),(2,1)}");
}

TEST_F(EvalTest, OrderByQualifiedFieldAfterJoin) {
  auto rel = RunPig(
      "J = JOIN Cars BY Model, Requests BY Model;\n"
      "O = ORDER J BY Cars::CarId DESC;",
      &env_, "O");
  LIPSTICK_ASSERT_OK(rel.status());
  ASSERT_EQ(rel->bag.size(), 2u);
  EXPECT_EQ(rel->bag.at(0).tuple.at(0).int_value(), 3);
  EXPECT_EQ(rel->bag.at(1).tuple.at(0).int_value(), 2);
}

TEST_F(EvalTest, PositionalRefsInFilter) {
  auto rel = RunPig("F = FILTER Cars BY $0 > 1 AND $1 == 'Civic';", &env_,
                    "F");
  LIPSTICK_ASSERT_OK(rel.status());
  EXPECT_EQ(rel->bag.size(), 2u);
}

TEST_F(EvalTest, LimitZeroAndNegativeLimitParse) {
  auto rel = RunPig("L = LIMIT Cars 0;", &env_, "L");
  LIPSTICK_ASSERT_OK(rel.status());
  EXPECT_EQ(rel->bag.size(), 0u);
}

TEST_F(EvalTest, StringComparisonOrdering) {
  auto rel = RunPig("F = FILTER Cars BY Model < 'B';", &env_, "F");
  LIPSTICK_ASSERT_OK(rel.status());
  EXPECT_EQ(rel->bag.size(), 1u);  // only 'Accord'
}

TEST_F(EvalTest, SplitRoutesTuples) {
  auto rel = RunPig(
      "SPLIT Cars INTO Accords IF Model == 'Accord',"
      " Civics IF Model == 'Civic', LowIds IF CarId <= 2;",
      &env_, "Civics");
  LIPSTICK_ASSERT_OK(rel.status());
  EXPECT_EQ(rel->bag.size(), 2u);
  // A tuple can land in several targets (car 2 is a Civic with a low id)
  // or none; SPLIT copies, it does not partition.
  EXPECT_EQ(env_.Lookup("Accords").value()->bag.size(), 1u);
  EXPECT_EQ(env_.Lookup("LowIds").value()->bag.size(), 2u);
}

TEST_F(EvalTest, SplitErrors) {
  auto not_bool = RunPig("SPLIT Cars INTO A IF CarId, B IF true;", &env_,
                         "A");
  EXPECT_EQ(not_bool.status().code(), StatusCode::kTypeError);
  EXPECT_FALSE(ParseProgram("SPLIT Cars INTO A IF true;").ok());  // 1 target
  EXPECT_FALSE(ParseProgram("SPLIT Cars A IF true, B IF false;").ok());
  // "split" still works as a plain relation name on the left of '='.
  auto program = ParseProgram("split = FILTER Cars BY true;");
  LIPSTICK_ASSERT_OK(program.status());
  // SPLIT statements print and reparse.
  auto roundtrip =
      ParseProgram("SPLIT Cars INTO A IF CarId > 1, B IF CarId <= 1;");
  LIPSTICK_ASSERT_OK(roundtrip.status());
  auto again = ParseProgram(roundtrip->ToString());
  LIPSTICK_ASSERT_OK(again.status());
  EXPECT_EQ(roundtrip->ToString(), again->ToString());
}

TEST_F(EvalTest, IsNullPredicate) {
  env_.Bind("N", MakeRelation("N",
                              MakeSchema({{"a", FieldType::Int()},
                                          {"b", FieldType::Int()}}),
                              {T({I(1), Value::Null()}), T({I(2), I(5)})}));
  auto nulls = RunPig("R = FILTER N BY b IS NULL;", &env_, "R");
  LIPSTICK_ASSERT_OK(nulls.status());
  ASSERT_EQ(nulls->bag.size(), 1u);
  EXPECT_EQ(nulls->bag.at(0).tuple.at(0).int_value(), 1);
  auto non_nulls = RunPig("R = FILTER N BY b IS NOT NULL;", &env_, "R");
  LIPSTICK_ASSERT_OK(non_nulls.status());
  ASSERT_EQ(non_nulls->bag.size(), 1u);
  EXPECT_EQ(non_nulls->bag.at(0).tuple.at(0).int_value(), 2);
  // Printing round-trips.
  auto program = ParseProgram("R = FILTER N BY b IS NOT NULL;");
  LIPSTICK_ASSERT_OK(program.status());
  EXPECT_EQ(program->statements[0].condition->ToString(), "b IS NOT NULL");
  // Analysis: IS NULL of a bag is rejected.
  auto bad = RunPig(
      "G = GROUP N BY a;\nR = FILTER G BY N IS NULL;", &env_, "R");
  EXPECT_EQ(bad.status().code(), StatusCode::kTypeError);
}

TEST_F(EvalTest, PaperExample23DealerBidQuery) {
  // The running example of the paper (Example 2.3): state of Mdealer1 and
  // the bid-phase query, checked against the intermediate tables printed
  // in the paper.
  pig::Environment env;
  env.Bind("Cars", MakeRelation("Cars",
                                MakeSchema({{"CarId", FieldType::String()},
                                            {"Model", FieldType::String()}}),
                                {T({S("C1"), S("Accord")}),
                                 T({S("C2"), S("Civic")}),
                                 T({S("C3"), S("Civic")})}));
  env.Bind("SoldCars",
           MakeRelation("SoldCars",
                        MakeSchema({{"CarId", FieldType::String()},
                                    {"BidId", FieldType::String()}}),
                        {}));
  env.Bind("Requests",
           MakeRelation("Requests",
                        MakeSchema({{"UserId", FieldType::String()},
                                    {"BidId", FieldType::String()},
                                    {"Model", FieldType::String()}}),
                        {T({S("P1"), S("B1"), S("Civic")})}));
  const char* query = R"PIG(
ReqModel = FOREACH Requests GENERATE Model;
Inventory0 = JOIN Cars BY Model, ReqModel BY Model;
Inventory = FOREACH Inventory0 GENERATE Cars::CarId AS CarId,
                                        Cars::Model AS Model;
SoldInventory = JOIN Inventory BY CarId, SoldCars BY CarId;
CarsByModel = GROUP Inventory BY Model;
SoldByModel = GROUP SoldInventory BY Inventory::CarId;
NumCarsByModel = FOREACH CarsByModel
    GENERATE group AS Model, COUNT(Inventory) AS NumAvail;
)PIG";
  auto rel = RunPig(query, &env, "NumCarsByModel");
  LIPSTICK_ASSERT_OK(rel.status());

  // Paper: Inventory = {(C2,Civic),(C3,Civic)}.
  EXPECT_EQ(env.Lookup("Inventory").value()->bag.ToString(),
            "{('C2','Civic'),('C3','Civic')}");
  // Paper: SoldInventory is empty.
  EXPECT_EQ(env.Lookup("SoldInventory").value()->bag.size(), 0u);
  // Paper: NumCarsByModel = {(Civic, 2)}.
  EXPECT_EQ(rel->bag.ToString(), "{('Civic',2)}");
}

}  // namespace
}  // namespace lipstick::pig

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>

#include "pig/interpreter.h"
#include "pig/parser.h"
#include "provenance/deletion.h"
#include "provenance/graph.h"
#include "provenance/semiring.h"
#include "provenance/subgraph.h"
#include "provenance/zoom.h"
#include "test_util.h"
#include "workflowgen/arctic.h"
#include "workflowgen/dealership.h"

namespace lipstick {
namespace {

using ::lipstick::testing::I;
using ::lipstick::testing::MakeRelation;
using ::lipstick::testing::MakeSchema;
using ::lipstick::testing::RunPig;
using ::lipstick::testing::S;
using ::lipstick::testing::T;

/// Binds a relation whose tuples are annotated with fresh tokens; returns
/// the token node per tuple.
std::vector<NodeId> BindTracked(pig::Environment* env, ShardWriter* w,
                                const std::string& name, SchemaPtr schema,
                                std::vector<Tuple> tuples) {
  Relation rel(name, std::move(schema));
  std::vector<NodeId> tokens;
  for (size_t i = 0; i < tuples.size(); ++i) {
    NodeId tok = w->Token(name + "[" + std::to_string(i) + "]");
    tokens.push_back(tok);
    rel.bag.Add(std::move(tuples[i]), tok);
  }
  env->Bind(name, std::move(rel));
  return tokens;
}

TEST(OperatorProvenanceTest, ForEachProjectionMakesPlusNodes) {
  pig::Environment env;
  ProvenanceGraph g;
  auto w = g.writer();
  auto tokens = BindTracked(&env, &w, "A",
                            MakeSchema({{"x", FieldType::Int()}}),
                            {T({I(1)}), T({I(2)})});
  auto rel = RunPig("B = FOREACH A GENERATE x;", &env, "B", nullptr, &w);
  LIPSTICK_ASSERT_OK(rel.status());
  for (size_t i = 0; i < rel->bag.size(); ++i) {
    NodeView n = g.node(rel->bag.at(i).annot);
    EXPECT_EQ(n.label(), NodeLabel::kPlus);
    EXPECT_EQ(testing::ToVec(n.parents()), std::vector<NodeId>{tokens[i]});
  }
}

TEST(OperatorProvenanceTest, JoinMakesTimesNodes) {
  pig::Environment env;
  ProvenanceGraph g;
  auto w = g.writer();
  auto la = BindTracked(&env, &w, "A",
                        MakeSchema({{"x", FieldType::Int()}}), {T({I(1)})});
  auto lb = BindTracked(&env, &w, "B",
                        MakeSchema({{"y", FieldType::Int()}}), {T({I(1)})});
  auto rel = RunPig("J = JOIN A BY x, B BY y;", &env, "J", nullptr, &w);
  LIPSTICK_ASSERT_OK(rel.status());
  ASSERT_EQ(rel->bag.size(), 1u);
  NodeView n = g.node(rel->bag.at(0).annot);
  EXPECT_EQ(n.label(), NodeLabel::kTimes);
  EXPECT_EQ(testing::ToVec(n.parents()), (std::vector<NodeId>{la[0], lb[0]}));
}

TEST(OperatorProvenanceTest, GroupMakesDeltaOverMembers) {
  pig::Environment env;
  ProvenanceGraph g;
  auto w = g.writer();
  auto tokens = BindTracked(
      &env, &w, "A", MakeSchema({{"m", FieldType::String()}}),
      {T({S("a")}), T({S("b")}), T({S("a")})});
  auto rel = RunPig("G = GROUP A BY m;", &env, "G", nullptr, &w);
  LIPSTICK_ASSERT_OK(rel.status());
  ASSERT_EQ(rel->bag.size(), 2u);
  for (const AnnotatedTuple& t : rel->bag) {
    NodeView n = g.node(t.annot);
    EXPECT_EQ(n.label(), NodeLabel::kDelta);
    if (t.tuple.at(0).string_value() == "a") {
      EXPECT_EQ(testing::ToVec(n.parents()),
                (std::vector<NodeId>{tokens[0], tokens[2]}));
    } else {
      EXPECT_EQ(testing::ToVec(n.parents()),
                std::vector<NodeId>{tokens[1]});
    }
    // Nested tuples keep their original provenance.
    for (const AnnotatedTuple& inner : *t.tuple.at(1).bag()) {
      EXPECT_TRUE(std::count(tokens.begin(), tokens.end(), inner.annot));
    }
  }
}

TEST(OperatorProvenanceTest, DistinctMakesDeltaAndFilterPassesThrough) {
  pig::Environment env;
  ProvenanceGraph g;
  auto w = g.writer();
  auto tokens = BindTracked(&env, &w, "A",
                            MakeSchema({{"x", FieldType::Int()}}),
                            {T({I(1)}), T({I(1)}), T({I(2)})});
  auto dist = RunPig("D = DISTINCT A;", &env, "D", nullptr, &w);
  LIPSTICK_ASSERT_OK(dist.status());
  for (const AnnotatedTuple& t : dist->bag) {
    EXPECT_EQ(g.node(t.annot).label(), NodeLabel::kDelta);
  }
  auto filt = RunPig("F = FILTER A BY x == 1;", &env, "F", nullptr, &w);
  ASSERT_EQ(filt->bag.size(), 2u);
  EXPECT_EQ(filt->bag.at(0).annot, tokens[0]);  // unchanged annotation
  EXPECT_EQ(filt->bag.at(1).annot, tokens[1]);
}

TEST(OperatorProvenanceTest, AggregationBuildsTensorStructure) {
  pig::Environment env;
  ProvenanceGraph g;
  auto w = g.writer();
  BindTracked(&env, &w, "A",
              MakeSchema({{"m", FieldType::String()},
                          {"v", FieldType::Int()}}),
              {T({S("a"), I(10)}), T({S("a"), I(20)})});
  auto rel = RunPig(
      "G = GROUP A BY m;\n"
      "R = FOREACH G GENERATE group, SUM(A.v) AS s, COUNT(A) AS n;",
      &env, "R", nullptr, &w);
  LIPSTICK_ASSERT_OK(rel.status());
  ASSERT_EQ(rel->bag.size(), 1u);
  // The output tuple is a + over (group δ, SUM agg, COUNT agg).
  NodeView out = g.node(rel->bag.at(0).annot);
  EXPECT_EQ(out.label(), NodeLabel::kPlus);
  int aggs = 0, deltas = 0;
  for (NodeId p : out.parents()) {
    if (g.node(p).label() == NodeLabel::kAggregate) ++aggs;
    if (g.node(p).label() == NodeLabel::kDelta) ++deltas;
  }
  EXPECT_EQ(aggs, 2);
  EXPECT_EQ(deltas, 1);
  // SUM feeds through ⊗ pairs of (value v-node, tuple p-node); COUNT uses
  // the simplified direct-edge construction; results are stored values.
  for (NodeId p : out.parents()) {
    NodeView n = g.node(p);
    if (n.label() != NodeLabel::kAggregate) continue;
    if (n.payload() == "SUM") {
      EXPECT_EQ(n.value().int_value(), 30);
      ASSERT_EQ(n.parents().size(), 2u);
      for (NodeId tp : n.parents()) {
        EXPECT_EQ(g.node(tp).label(), NodeLabel::kTensor);
        EXPECT_EQ(g.node(g.node(tp).parents()[0]).label(),
                  NodeLabel::kConstValue);
      }
    } else {
      EXPECT_EQ(n.payload(), "COUNT");
      EXPECT_EQ(n.value().int_value(), 2);
      for (NodeId tp : n.parents()) {
        EXPECT_EQ(g.node(tp).label(), NodeLabel::kToken);
      }
    }
  }
}

TEST(OperatorProvenanceTest, BlackBoxNodeForUdf) {
  pig::Environment env;
  ProvenanceGraph g;
  auto w = g.writer();
  auto tokens = BindTracked(&env, &w, "A",
                            MakeSchema({{"x", FieldType::Int()}}),
                            {T({I(5)})});
  pig::UdfRegistry udfs;
  LIPSTICK_ASSERT_OK(udfs.Register(
      "Triple",
      [](const std::vector<Value>& args) -> Result<Value> {
        return Value::Int(args[0].int_value() * 3);
      },
      FieldType::Int()));
  auto rel =
      RunPig("B = FOREACH A GENERATE Triple(x) AS t;", &env, "B", &udfs, &w);
  LIPSTICK_ASSERT_OK(rel.status());
  NodeView out = g.node(rel->bag.at(0).annot);
  bool has_bb = false;
  for (NodeId p : out.parents()) {
    if (g.node(p).label() == NodeLabel::kBlackBox) {
      has_bb = true;
      EXPECT_EQ(g.node(p).payload(), "triple");
      EXPECT_EQ(testing::ToVec(g.node(p).parents()),
                std::vector<NodeId>{tokens[0]});
    }
  }
  EXPECT_TRUE(has_bb);
}

/// --------------------------- deletion ----------------------------------

/// Builds the paper's Example 2.3 bid computation with tracking; the
/// returned ids follow Figure 2(c)'s cast: request token, car tokens.
struct DealerFixture {
  pig::Environment env;
  ProvenanceGraph graph;
  NodeId request, car_c1, car_c2, car_c3;
  NodeId bid_node;  // provenance of the produced bid tuple

  static constexpr const char* kQuery = R"PIG(
ReqModel = FOREACH Requests GENERATE Model;
Inventory0 = JOIN Cars BY Model, ReqModel BY Model;
Inventory = FOREACH Inventory0 GENERATE Cars::CarId AS CarId,
                                        Cars::Model AS Model;
CarsByModel = GROUP Inventory BY Model;
NumCarsByModel = FOREACH CarsByModel
    GENERATE group AS Model, COUNT(Inventory) AS NumAvail;
AllInfo = COGROUP Requests BY Model, NumCarsByModel BY Model;
Bids = FOREACH AllInfo GENERATE FLATTEN(CalcBid2(Requests, NumCarsByModel));
)PIG";

  Status Build() {
    auto w = graph.writer();
    auto cars = BindTracked(&env, &w, "Cars",
                            MakeSchema({{"CarId", FieldType::String()},
                                        {"Model", FieldType::String()}}),
                            {T({S("C1"), S("Accord")}),
                             T({S("C2"), S("Civic")}),
                             T({S("C3"), S("Civic")})});
    car_c1 = cars[0];
    car_c2 = cars[1];
    car_c3 = cars[2];
    auto reqs = BindTracked(&env, &w, "Requests",
                            MakeSchema({{"UserId", FieldType::String()},
                                        {"BidId", FieldType::String()},
                                        {"Model", FieldType::String()}}),
                            {T({S("P1"), S("B1"), S("Civic")})});
    request = reqs[0];
    pig::UdfRegistry udfs;
    SchemaPtr bid_schema = MakeSchema({{"Amount", FieldType::Double()}});
    LIPSTICK_RETURN_IF_ERROR(udfs.Register(
        "CalcBid2",
        pig::UdfEntry{
            [](const std::vector<Value>& args) -> Result<Value> {
              auto out = std::make_shared<Bag>();
              if (!args[1].bag()->empty()) {
                double avail = args[1].bag()->at(0).tuple.at(1).AsDouble();
                out->Add(Tuple({Value::Double(20000.0 - 100 * avail)}));
              }
              return Value::OfBag(out);
            },
            [bid_schema](const std::vector<FieldType>&) {
              return Result<FieldType>(FieldType::Bag(bid_schema));
            }}));
    Result<Relation> bids = RunPig(kQuery, &env, "Bids", &udfs, &w);
    LIPSTICK_RETURN_IF_ERROR(bids.status());
    if (bids->bag.size() != 1) return Status::Internal("expected one bid");
    bid_node = bids->bag.at(0).annot;
    graph.Seal();
    return Status::OK();
  }
};

TEST(DeletionTest, PaperExample43DeletingOneCarKeepsBid) {
  DealerFixture f;
  LIPSTICK_ASSERT_OK(f.Build());
  // Example 4.3/4.5: the bid still exists if car C2 is removed — the COUNT
  // loses an input but the derivation survives.
  auto deleted = *ComputeDeletionSet(f.graph, {f.car_c2});
  EXPECT_FALSE(deleted.count(f.bid_node));
  EXPECT_TRUE(deleted.count(f.car_c2));
  EXPECT_FALSE(deleted.count(f.car_c3));
  EXPECT_FALSE(*DependsOn(f.graph, f.bid_node, f.car_c2));
}

TEST(DeletionTest, PaperExample44DeletingRequestKillsEverything) {
  DealerFixture f;
  LIPSTICK_ASSERT_OK(f.Build());
  // Example 4.4: deleting the bid request erases the whole derivation
  // except nodes standing for state tuples (the cars).
  auto deleted = *ComputeDeletionSet(f.graph, {f.request});
  EXPECT_TRUE(deleted.count(f.bid_node));
  EXPECT_FALSE(deleted.count(f.car_c1));
  EXPECT_FALSE(deleted.count(f.car_c2));
  EXPECT_TRUE(*DependsOn(f.graph, f.bid_node, f.request));
}

TEST(DeletionTest, DeletingBothCivicsKillsCountButNotBlackBox) {
  DealerFixture f;
  LIPSTICK_ASSERT_OK(f.Build());
  auto deleted = *ComputeDeletionSet(f.graph, {f.car_c2, f.car_c3});
  // The whole inventory derivation for the model is gone...
  size_t dead_aggs = 0;
  for (NodeId id : f.graph.AllNodeIds()) {
    if (f.graph.Contains(id) &&
        f.graph.node(id).label() == NodeLabel::kAggregate &&
        deleted.count(id)) {
      ++dead_aggs;
    }
  }
  EXPECT_GE(dead_aggs, 1u) << "the COUNT over the inventory must die";
  // ...but per Definition 4.2 a black box survives while any of its inputs
  // (here: the request) remains, so the bid tuple itself survives.
  EXPECT_FALSE(deleted.count(f.bid_node));
}

TEST(DeletionTest, MaterializationRemovesNodes) {
  DealerFixture f;
  LIPSTICK_ASSERT_OK(f.Build());
  size_t alive_before = f.graph.num_alive();
  size_t removed = *PropagateDeletion(&f.graph, f.car_c2);
  EXPECT_GT(removed, 1u);
  EXPECT_EQ(f.graph.num_alive(), alive_before - removed);
  EXPECT_FALSE(f.graph.Contains(f.car_c2));
  EXPECT_TRUE(f.graph.Contains(f.bid_node));
}

TEST(DeletionTest, AgreesWithCountingSemiringZeroing) {
  // Property (Definition 4.2 vs the semiring semantics): a node is deleted
  // when token t is removed iff its counting-semiring value is zero under
  // t := 0. Checked for every token in the dealer fixture.
  DealerFixture f;
  LIPSTICK_ASSERT_OK(f.Build());
  std::vector<NodeId> tokens{f.request, f.car_c1, f.car_c2, f.car_c3};
  for (NodeId t : tokens) {
    auto deleted = *ComputeDeletionSet(f.graph, {t});
    GraphEvaluator<CountingSemiring> eval(f.graph, {{t, 0}});
    for (NodeId n : f.graph.AllNodeIds()) {
      if (!f.graph.Contains(n)) continue;
      bool in_set = deleted.count(n) > 0;
      bool eval_zero = eval.Eval(n) == 0;
      EXPECT_EQ(in_set, eval_zero)
          << "node " << n << " ("
          << NodeLabelToString(f.graph.node(n).label())
          << ") disagreement for token " << f.graph.node(t).payload();
    }
  }
}

TEST(DeletionTest, SeedMustExist) {
  DealerFixture f;
  LIPSTICK_ASSERT_OK(f.Build());
  EXPECT_TRUE(ComputeDeletionSet(f.graph, {kInvalidNode})->empty());
  EXPECT_FALSE(*DependsOn(f.graph, f.bid_node, kInvalidNode));
}

/// --------------------------- subgraph ----------------------------------

TEST(SubgraphTest, AncestorsAndDescendants) {
  ProvenanceGraph g;
  auto w = g.writer();
  NodeId x = w.Token("x");
  NodeId y = w.Token("y");
  NodeId p = w.Times({x, y});
  NodeId q = w.Plus({p});
  NodeId other = w.Token("z");
  g.Seal();
  auto anc = Ancestors(g, q);
  EXPECT_EQ(anc, (std::unordered_set<NodeId>{p, x, y}));
  auto desc = *Descendants(g, x);
  EXPECT_EQ(desc, (std::unordered_set<NodeId>{p, q}));
  EXPECT_TRUE(Descendants(g, other)->empty());
}

TEST(SubgraphTest, IncludesSiblingsOfDescendants) {
  ProvenanceGraph g;
  auto w = g.writer();
  NodeId x = w.Token("x");
  NodeId y = w.Token("y");  // sibling: co-parent of the join below
  NodeId join = w.Times({x, y});
  g.Seal();
  auto sub = *SubgraphQuery(g, x);
  // y is not an ancestor or descendant of x, but it is needed to re-derive
  // the join, so the subgraph query includes it.
  EXPECT_TRUE(sub.count(y));
  EXPECT_TRUE(sub.count(join));
  EXPECT_TRUE(sub.count(x));
}

TEST(SubgraphTest, DealerBidSubgraphCoversDerivation) {
  DealerFixture f;
  LIPSTICK_ASSERT_OK(f.Build());
  auto sub = *SubgraphQuery(f.graph, f.request);
  EXPECT_TRUE(sub.count(f.bid_node));
  // The Accord car C1 joins nothing, so it stays out of the subgraph.
  EXPECT_FALSE(sub.count(f.car_c1));
  EXPECT_TRUE(sub.count(f.car_c2));  // sibling through the join/group
  EXPECT_TRUE(SubgraphQuery(f.graph, kInvalidNode)->empty());
}

/// ----------------------------- zoom ------------------------------------

/// Canonical signature of the alive part of a graph (for exact-inverse
/// checks that ignore dead placeholder nodes).
std::string AliveSignature(const ProvenanceGraph& g) {
  std::ostringstream os;
  for (NodeId id : g.AllNodeIds()) {
    if (!g.Contains(id)) continue;
    NodeView n = g.node(id);
    os << id << '|' << static_cast<int>(n.label()) << '|'
       << static_cast<int>(n.role()) << '|' << n.payload() << '|';
    std::vector<NodeId> parents;
    for (NodeId p : n.parents()) {
      if (g.Contains(p)) parents.push_back(p);
    }
    std::sort(parents.begin(), parents.end());
    for (NodeId p : parents) os << p << ',';
    os << '\n';
  }
  return os.str();
}

class ZoomTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workflowgen::DealershipConfig cfg;
    cfg.num_cars = 200;
    cfg.num_executions = 3;
    cfg.seed = 11;
    auto wf = workflowgen::DealershipWorkflow::Create(cfg);
    LIPSTICK_ASSERT_OK(wf.status());
    auto stats = (*wf)->Run(&graph_);
    LIPSTICK_ASSERT_OK(stats.status());
    graph_.Seal();
  }

  ProvenanceGraph graph_;
};

TEST_F(ZoomTest, ZoomOutRemovesIntermediatesAndState) {
  Zoomer zoomer(&graph_);
  size_t before = graph_.num_alive();
  LIPSTICK_ASSERT_OK(zoomer.ZoomOut({"dealer"}));
  EXPECT_LT(graph_.num_alive(), before);
  EXPECT_TRUE(zoomer.IsZoomedOut("dealer"));
  // No intermediate or state node of any dealer invocation survives.
  for (NodeId id : graph_.AllNodeIds()) {
    if (!graph_.Contains(id)) continue;
    NodeView n = graph_.node(id);
    if (n.invocation() == kNoInvocation) continue;
    if (graph_.str(graph_.invocations()[n.invocation()].module_name) !=
        "dealer") {
      continue;
    }
    EXPECT_NE(n.role(), NodeRole::kIntermediate) << "id " << id;
    EXPECT_NE(n.role(), NodeRole::kModuleState) << "id " << id;
  }
  // Each dealer invocation now has a zoom node wired inputs -> M -> outputs.
  size_t zoom_nodes = 0;
  for (NodeId id : graph_.AllNodeIds()) {
    if (graph_.Contains(id) &&
        graph_.node(id).label() == NodeLabel::kZoomedModule) {
      ++zoom_nodes;
    }
  }
  size_t dealer_invocations = 0;
  for (const InvocationInfo& inv : graph_.invocations()) {
    if (graph_.str(inv.module_name) == "dealer") ++dealer_invocations;
  }
  EXPECT_EQ(zoom_nodes, dealer_invocations);
}

TEST_F(ZoomTest, ZoomInIsExactInverse) {
  std::string original = AliveSignature(graph_);
  Zoomer zoomer(&graph_);
  LIPSTICK_ASSERT_OK(zoomer.ZoomOut({"dealer", "aggregate"}));
  EXPECT_NE(AliveSignature(graph_), original);
  LIPSTICK_ASSERT_OK(zoomer.ZoomIn({"dealer", "aggregate"}));
  EXPECT_EQ(AliveSignature(graph_), original);
}

TEST_F(ZoomTest, ZoomOutAllYieldsCoarseGrainedGraph) {
  Zoomer zoomer(&graph_);
  LIPSTICK_ASSERT_OK(zoomer.ZoomOutAll());
  // Coarse-grained view: only workflow inputs, invocation nodes, module
  // input/output wrappers, and collapsed module nodes remain.
  for (NodeId id : graph_.AllNodeIds()) {
    if (!graph_.Contains(id)) continue;
    NodeView n = graph_.node(id);
    bool coarse = n.role() == NodeRole::kWorkflowInput ||
                  n.role() == NodeRole::kInvocation ||
                  n.role() == NodeRole::kModuleInput ||
                  n.role() == NodeRole::kModuleOutput ||
                  n.role() == NodeRole::kZoom;
    EXPECT_TRUE(coarse) << "unexpected node " << id << " with role "
                        << NodeRoleToString(n.role());
  }
}

TEST_F(ZoomTest, ZoomInWithoutZoomOutFails) {
  Zoomer zoomer(&graph_);
  EXPECT_FALSE(zoomer.ZoomIn({"dealer"}).ok());
  EXPECT_FALSE(zoomer.ZoomOut({"nonexistent_module"}).ok());
}

TEST_F(ZoomTest, RepeatedZoomOutIsIdempotent) {
  Zoomer zoomer(&graph_);
  LIPSTICK_ASSERT_OK(zoomer.ZoomOut({"dealer"}));
  size_t alive = graph_.num_alive();
  LIPSTICK_ASSERT_OK(zoomer.ZoomOut({"dealer"}));  // already zoomed: no-op
  EXPECT_EQ(graph_.num_alive(), alive);
}

TEST_F(ZoomTest, TagBasedIntermediatesMatchDefinition41) {
  // Definition 4.1 identifies intermediate nodes by paths from input/state
  // nodes that avoid output nodes. The executor instead tags nodes with
  // their invocation. The path-based set must be covered by the tag-based
  // removal set (which additionally removes state wrappers and bases).
  auto by_definition = *IntermediateNodesByDefinition(graph_, "dealer");
  std::unordered_set<NodeId> by_tags;
  std::unordered_set<uint32_t> dealer_invs;
  for (uint32_t i = 0; i < graph_.invocations().size(); ++i) {
    if (graph_.str(graph_.invocations()[i].module_name) == "dealer") {
      dealer_invs.insert(i);
      for (NodeId s : graph_.invocations()[i].state_nodes) by_tags.insert(s);
    }
  }
  for (NodeId id : graph_.AllNodeIds()) {
    if (!graph_.Contains(id)) continue;
    NodeView n = graph_.node(id);
    if (n.role() == NodeRole::kIntermediate &&
        n.invocation() != kNoInvocation &&
        dealer_invs.count(n.invocation())) {
      by_tags.insert(id);
    }
  }
  for (NodeId id : by_definition) {
    EXPECT_TRUE(by_tags.count(id))
        << "definition-4.1 node " << id << " ("
        << NodeLabelToString(graph_.node(id).label()) << "/"
        << NodeRoleToString(graph_.node(id).role())
        << ") missing from tag-based removal set";
  }
  // And conversely, every tagged intermediate (not state/base) is reachable
  // per Definition 4.1.
  for (NodeId id : by_tags) {
    if (graph_.node(id).role() != NodeRole::kIntermediate) continue;
    EXPECT_TRUE(by_definition.count(id))
        << "tagged intermediate " << id << " not identified by "
        << "Definition 4.1";
  }
}

TEST(ZoomArcticTest, ZoomRoundTripOnArcticGraph) {
  workflowgen::ArcticConfig cfg;
  cfg.topology = workflowgen::ArcticTopology::kSerial;
  cfg.num_stations = 4;
  cfg.history_years = 5;
  cfg.selectivity = workflowgen::Selectivity::kMonth;
  auto wf = workflowgen::ArcticWorkflow::Create(cfg);
  LIPSTICK_ASSERT_OK(wf.status());
  ProvenanceGraph graph;
  LIPSTICK_ASSERT_OK((*wf)->RunSeries(3, &graph).status());
  graph.Seal();
  std::string original = AliveSignature(graph);
  Zoomer zoomer(&graph);
  LIPSTICK_ASSERT_OK(zoomer.ZoomOut({"station"}));
  LIPSTICK_ASSERT_OK(zoomer.ZoomIn({"station"}));
  EXPECT_EQ(AliveSignature(graph), original);
}

}  // namespace
}  // namespace lipstick

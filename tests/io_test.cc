#include <gtest/gtest.h>

#include <sstream>

#include "provenance/provio.h"
#include "relational/csv.h"
#include "test_util.h"
#include "workflow/executor.h"
#include "workflow/wfdsl.h"

namespace lipstick {
namespace {

using ::lipstick::testing::I;
using ::lipstick::testing::MakeSchema;
using ::lipstick::testing::S;
using ::lipstick::testing::T;

SchemaPtr CarSchema() {
  return MakeSchema({{"CarId", FieldType::Int()},
                     {"Model", FieldType::String()},
                     {"Price", FieldType::Double()},
                     {"Sold", FieldType::Bool()}});
}

TEST(CsvTest, ReadTypedRows) {
  std::istringstream in(
      "CarId,Model,Price,Sold\n"
      "1,Golf,19999.5,false\n"
      "2,Jetta,23000,1\n");
  Result<Bag> bag = ReadCsv(in, *CarSchema());
  LIPSTICK_ASSERT_OK(bag.status());
  ASSERT_EQ(bag->size(), 2u);
  EXPECT_EQ(bag->at(0).tuple.at(0).int_value(), 1);
  EXPECT_EQ(bag->at(0).tuple.at(1).string_value(), "Golf");
  EXPECT_DOUBLE_EQ(bag->at(0).tuple.at(2).double_value(), 19999.5);
  EXPECT_FALSE(bag->at(0).tuple.at(3).bool_value());
  EXPECT_TRUE(bag->at(1).tuple.at(3).bool_value());
}

TEST(CsvTest, QuotingRoundTrip) {
  Relation rel("R",
               MakeSchema({{"a", FieldType::String()},
                           {"b", FieldType::String()}}));
  rel.bag.Add(T({S("with,comma"), S("with \"quotes\"")}));
  rel.bag.Add(T({S("line\nbreak"), S("plain")}));
  std::ostringstream out;
  LIPSTICK_ASSERT_OK(WriteCsv(out, rel));
  std::istringstream in(out.str());
  Result<Bag> bag = ReadCsv(in, *rel.schema);
  LIPSTICK_ASSERT_OK(bag.status());
  EXPECT_TRUE(bag->ContentEquals(rel.bag));
}

TEST(CsvTest, NullHandling) {
  CsvOptions options;
  options.null_text = "NULL";
  std::istringstream in("a\nNULL\n3\n");
  Result<Bag> bag =
      ReadCsv(in, *MakeSchema({{"a", FieldType::Int()}}), options);
  LIPSTICK_ASSERT_OK(bag.status());
  EXPECT_TRUE(bag->at(0).tuple.at(0).is_null());
  EXPECT_EQ(bag->at(1).tuple.at(0).int_value(), 3);
}

TEST(CsvTest, Errors) {
  // Wrong header.
  std::istringstream bad_header("x,y\n1,2\n");
  EXPECT_FALSE(ReadCsv(bad_header, *MakeSchema({{"a", FieldType::Int()},
                                                {"b", FieldType::Int()}}))
                   .ok());
  // Wrong column count.
  std::istringstream bad_cols("a\n1,2\n");
  EXPECT_FALSE(ReadCsv(bad_cols, *MakeSchema({{"a", FieldType::Int()}})).ok());
  // Type error with location.
  std::istringstream bad_type("a\nxyz\n");
  Status st =
      ReadCsv(bad_type, *MakeSchema({{"a", FieldType::Int()}})).status();
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find("row 2"), std::string::npos);
  // Nested schema rejected.
  SchemaPtr nested = MakeSchema(
      {{"bag", FieldType::Bag(MakeSchema({{"x", FieldType::Int()}}))}});
  std::istringstream any("bag\n{}\n");
  EXPECT_FALSE(ReadCsv(any, *nested).ok());
}

TEST(CsvTest, CustomDelimiterAndNoHeader) {
  CsvOptions options;
  options.delimiter = '\t';
  options.header = false;
  std::istringstream in("1\tGolf\n2\tJetta\n");
  Result<Bag> bag = ReadCsv(
      in, *MakeSchema({{"id", FieldType::Int()},
                       {"m", FieldType::String()}}),
      options);
  LIPSTICK_ASSERT_OK(bag.status());
  EXPECT_EQ(bag->size(), 2u);
}

constexpr char kDslSource[] = R"WF(
-- two-module workflow used across the DSL tests
module source {
  input Ext(x: int);
  output Out(x: int);
  qout {
    Out = FOREACH Ext GENERATE x;
  }
}

module doubler {
  input In(x: int);
  output Out(y: double);
  qout {
    Out = FOREACH In GENERATE x * 2.0 AS y;
  }
}

node in = source;
node d1 = doubler;
node d2 = doubler as d1_shared;
edge in -> d1 : Out -> In;
edge in -> d2 : Out -> In;
)WF";

TEST(WfDslTest, ParsesModulesNodesEdges) {
  Result<Workflow> wf = ParseWorkflow(kDslSource);
  LIPSTICK_ASSERT_OK(wf.status());
  EXPECT_EQ(wf->nodes().size(), 3u);
  EXPECT_EQ(wf->edges().size(), 2u);
  LIPSTICK_EXPECT_OK(wf->Validate(nullptr));
  // Instance binding via `as`.
  EXPECT_EQ(wf->FindNode("d2").value()->instance, "d1_shared");
  EXPECT_EQ(wf->FindNode("d1").value()->instance, "d1");
  // Module schemas parsed with types.
  const ModuleSpec* doubler = wf->FindModule("doubler").value();
  EXPECT_EQ(doubler->output_schemas.at("Out")->field(0).type.kind(),
            FieldType::Kind::kDouble);
}

TEST(WfDslTest, ParsedWorkflowExecutes) {
  Result<Workflow> wf = ParseWorkflow(kDslSource);
  LIPSTICK_ASSERT_OK(wf.status());
  WorkflowExecutor exec(&*wf, nullptr);
  LIPSTICK_ASSERT_OK(exec.Initialize());
  WorkflowInputs inputs;
  Bag ext;
  ext.Add(T({I(21)}));
  inputs["in"]["Ext"] = std::move(ext);
  auto outputs = exec.Execute(inputs, nullptr);
  LIPSTICK_ASSERT_OK(outputs.status());
  EXPECT_DOUBLE_EQ(
      outputs->at("d1").at("Out").bag.at(0).tuple.at(0).double_value(), 42.0);
}

TEST(WfDslTest, RoundTripThroughDsl) {
  Result<Workflow> wf = ParseWorkflow(kDslSource);
  LIPSTICK_ASSERT_OK(wf.status());
  std::string dsl = WorkflowToDsl(*wf);
  Result<Workflow> again = ParseWorkflow(dsl);
  LIPSTICK_ASSERT_OK(again.status());
  EXPECT_EQ(again->nodes().size(), wf->nodes().size());
  EXPECT_EQ(again->edges().size(), wf->edges().size());
  LIPSTICK_EXPECT_OK(again->Validate(nullptr));
  // Printing the reparsed workflow reproduces the same DSL (fixpoint).
  EXPECT_EQ(WorkflowToDsl(*again), dsl);
}

TEST(WfDslTest, StateAndQstate) {
  const char* source = R"WF(
module acc {
  input In(x: int);
  state Seen(x: int);
  output Total(t: int);
  qstate { Seen = UNION Seen, In; }
  qout {
    G = GROUP Seen ALL;
    Total = FOREACH G GENERATE SUM(Seen.x) AS t;
  }
}
node a = acc;
)WF";
  Result<Workflow> wf = ParseWorkflow(source);
  LIPSTICK_ASSERT_OK(wf.status());
  LIPSTICK_EXPECT_OK(wf->Validate(nullptr));
  const ModuleSpec* acc = wf->FindModule("acc").value();
  EXPECT_EQ(acc->qstate.statements.size(), 1u);
  EXPECT_EQ(acc->state_schemas.size(), 1u);
}

TEST(WfDslTest, ErrorsCarryLineNumbers) {
  Result<Workflow> bad1 = ParseWorkflow("module m {\n  bogus Foo(x: int);\n}");
  EXPECT_EQ(bad1.status().code(), StatusCode::kParseError);
  EXPECT_NE(bad1.status().message().find("line 2"), std::string::npos);

  EXPECT_FALSE(ParseWorkflow("node a = ;").ok());
  EXPECT_FALSE(ParseWorkflow("edge a b : R;").ok());          // missing ->
  EXPECT_FALSE(ParseWorkflow("module m { input R(x: blob); }").ok());
  EXPECT_FALSE(ParseWorkflow("module m { qout { A = ").ok());  // open block
  // Pig parse errors surface through MakeModule.
  Result<Workflow> bad_pig =
      ParseWorkflow("module m { qout { A = FILTER; } }\nnode n = m;");
  EXPECT_EQ(bad_pig.status().code(), StatusCode::kParseError);
}

TEST(WfDslTest, FileNotFound) {
  EXPECT_EQ(ParseWorkflowFile("/no/such/file.wf").status().code(),
            StatusCode::kIOError);
}

/// ------------------- provio loader robustness ---------------------------
/// The loaders must reject truncated, corrupted, or adversarial input with
/// a Status — never crash, hang, or return a graph with dangling
/// references (the recovery path feeds them checkpoint files that may have
/// been cut short by a crash).

/// Builds a tracked provenance dump of a few KiB by running the DSL
/// workflow several times with provenance on.
std::string TrackedGraphDump() {
  Result<Workflow> wf = ParseWorkflow(kDslSource);
  EXPECT_TRUE(wf.ok()) << wf.status().ToString();
  WorkflowExecutor exec(&*wf, nullptr);
  EXPECT_TRUE(exec.Initialize().ok());
  ProvenanceGraph graph;
  for (int e = 0; e < 8; ++e) {
    WorkflowInputs inputs;
    Bag ext;
    for (int i = 0; i < 6; ++i) ext.Add(T({I(e * 10 + i)}));
    inputs["in"]["Ext"] = std::move(ext);
    auto outputs = exec.Execute(inputs, &graph);
    EXPECT_TRUE(outputs.ok()) << outputs.status().ToString();
  }
  graph.Seal();
  std::ostringstream out;
  EXPECT_TRUE(SaveGraph(graph, out).ok());
  return out.str();
}

TEST(ProvioRobustnessTest, TruncationSweepAlwaysReturnsStatus) {
  std::string full = TrackedGraphDump();
  ASSERT_GT(full.size(), 4096u) << "dump too small for a meaningful sweep";

  // The intact dump loads.
  {
    std::istringstream in(full);
    LIPSTICK_EXPECT_OK(LoadGraph(in).status());
  }
  // Every proper prefix at a 1 KiB boundary must be rejected: either the
  // cut lands mid-record (parse error) or after a complete record but
  // before the end marker (truncation error). Never a crash, never a
  // silently short graph.
  for (size_t cut = 0; cut + 1 < full.size(); cut += 1024) {
    std::istringstream in(full.substr(0, cut));
    Result<ProvenanceGraph> r = LoadGraph(in);
    EXPECT_FALSE(r.ok()) << "prefix of " << cut << " bytes loaded";
  }
}

TEST(ProvioRobustnessTest, GarbageHeadersRejected) {
  for (const char* garbage :
       {"", "LIPSTICKGRAPH v9\nshards 1\nend\n", "\x7f\x45\x4c\x46\x02\x01",
        "totally not a graph\n", "LIPSTICKGRAPH v2"}) {
    std::istringstream in(garbage);
    EXPECT_FALSE(LoadGraph(in).ok()) << "accepted: " << garbage;
  }
}

TEST(ProvioRobustnessTest, OversizedCountsRejectedWithoutAllocating) {
  // Absurd shard count: rejected up front (a real graph never has more
  // shards than worker threads).
  std::istringstream shards("LIPSTICKGRAPH v2\nshards 4294967295\nend\n");
  EXPECT_FALSE(LoadGraph(shards).ok());
  // Huge declared string count with no actual strings: the reserve is
  // clamped, and the missing records surface as a truncation error rather
  // than an allocation of 4 billion entries.
  std::istringstream strings(
      "LIPSTICKGRAPH v2\nshards 1\nstrings 4000000000\n");
  EXPECT_FALSE(LoadGraph(strings).ok());
}

TEST(ProvioRobustnessTest, MissingEndMarkerRejected) {
  std::string full = TrackedGraphDump();
  size_t end_at = full.rfind("end\n");
  ASSERT_NE(end_at, std::string::npos);
  std::istringstream in(full.substr(0, end_at));
  Status st = LoadGraph(in).status();
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find("end marker"), std::string::npos);
}

TEST(ProvioRobustnessTest, DanglingReferencesRejected) {
  // Node whose parent list names a node that is never defined.
  std::istringstream dangling_parent(
      "LIPSTICKGRAPH v2\n"
      "shards 1\n"
      "strings 1\n"
      "s tok\n"
      "n 281474976710656 0 0 0 1 4294967295 281474976710657 1 N\n"
      "end\n");
  Status st = LoadGraph(dangling_parent).status();
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find("undefined parent"), std::string::npos);

  // Alive node tagged with an invocation that was never recorded.
  std::istringstream dangling_invocation(
      "LIPSTICKGRAPH v2\n"
      "shards 1\n"
      "strings 1\n"
      "s tok\n"
      "n 281474976710656 0 0 0 1 7 - 1 N\n"
      "end\n");
  st = LoadGraph(dangling_invocation).status();
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find("undefined invocation"), std::string::npos);
}

TEST(ProvioRobustnessTest, MalformedRecordsRejected) {
  // Non-numeric id inside a parents list.
  std::istringstream bad_ids(
      "LIPSTICKGRAPH v2\nshards 1\nstrings 1\ns tok\n"
      "n 281474976710656 0 0 0 1 4294967295 12,abc 1 N\nend\n");
  EXPECT_FALSE(LoadGraph(bad_ids).ok());
  // Out-of-range label.
  std::istringstream bad_label(
      "LIPSTICKGRAPH v2\nshards 1\nstrings 1\ns tok\n"
      "n 281474976710656 99 0 0 1 4294967295 - 1 N\nend\n");
  EXPECT_FALSE(LoadGraph(bad_label).ok());
  // Unknown record tag.
  std::istringstream bad_tag(
      "LIPSTICKGRAPH v2\nshards 1\nstrings 0\nq what\nend\n");
  EXPECT_FALSE(LoadGraph(bad_tag).ok());
}

TEST(ProvioRobustnessTest, DirectoryPathRejectedWithOneLineError) {
  Result<ProvenanceGraph> r = LoadGraphFromFile("/tmp");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  EXPECT_NE(r.status().message().find("directory"), std::string::npos);
}

}  // namespace
}  // namespace lipstick

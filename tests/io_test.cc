#include <gtest/gtest.h>

#include <sstream>

#include "relational/csv.h"
#include "test_util.h"
#include "workflow/executor.h"
#include "workflow/wfdsl.h"

namespace lipstick {
namespace {

using ::lipstick::testing::I;
using ::lipstick::testing::MakeSchema;
using ::lipstick::testing::S;
using ::lipstick::testing::T;

SchemaPtr CarSchema() {
  return MakeSchema({{"CarId", FieldType::Int()},
                     {"Model", FieldType::String()},
                     {"Price", FieldType::Double()},
                     {"Sold", FieldType::Bool()}});
}

TEST(CsvTest, ReadTypedRows) {
  std::istringstream in(
      "CarId,Model,Price,Sold\n"
      "1,Golf,19999.5,false\n"
      "2,Jetta,23000,1\n");
  Result<Bag> bag = ReadCsv(in, *CarSchema());
  LIPSTICK_ASSERT_OK(bag.status());
  ASSERT_EQ(bag->size(), 2u);
  EXPECT_EQ(bag->at(0).tuple.at(0).int_value(), 1);
  EXPECT_EQ(bag->at(0).tuple.at(1).string_value(), "Golf");
  EXPECT_DOUBLE_EQ(bag->at(0).tuple.at(2).double_value(), 19999.5);
  EXPECT_FALSE(bag->at(0).tuple.at(3).bool_value());
  EXPECT_TRUE(bag->at(1).tuple.at(3).bool_value());
}

TEST(CsvTest, QuotingRoundTrip) {
  Relation rel("R",
               MakeSchema({{"a", FieldType::String()},
                           {"b", FieldType::String()}}));
  rel.bag.Add(T({S("with,comma"), S("with \"quotes\"")}));
  rel.bag.Add(T({S("line\nbreak"), S("plain")}));
  std::ostringstream out;
  LIPSTICK_ASSERT_OK(WriteCsv(out, rel));
  std::istringstream in(out.str());
  Result<Bag> bag = ReadCsv(in, *rel.schema);
  LIPSTICK_ASSERT_OK(bag.status());
  EXPECT_TRUE(bag->ContentEquals(rel.bag));
}

TEST(CsvTest, NullHandling) {
  CsvOptions options;
  options.null_text = "NULL";
  std::istringstream in("a\nNULL\n3\n");
  Result<Bag> bag =
      ReadCsv(in, *MakeSchema({{"a", FieldType::Int()}}), options);
  LIPSTICK_ASSERT_OK(bag.status());
  EXPECT_TRUE(bag->at(0).tuple.at(0).is_null());
  EXPECT_EQ(bag->at(1).tuple.at(0).int_value(), 3);
}

TEST(CsvTest, Errors) {
  // Wrong header.
  std::istringstream bad_header("x,y\n1,2\n");
  EXPECT_FALSE(ReadCsv(bad_header, *MakeSchema({{"a", FieldType::Int()},
                                                {"b", FieldType::Int()}}))
                   .ok());
  // Wrong column count.
  std::istringstream bad_cols("a\n1,2\n");
  EXPECT_FALSE(ReadCsv(bad_cols, *MakeSchema({{"a", FieldType::Int()}})).ok());
  // Type error with location.
  std::istringstream bad_type("a\nxyz\n");
  Status st =
      ReadCsv(bad_type, *MakeSchema({{"a", FieldType::Int()}})).status();
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find("row 2"), std::string::npos);
  // Nested schema rejected.
  SchemaPtr nested = MakeSchema(
      {{"bag", FieldType::Bag(MakeSchema({{"x", FieldType::Int()}}))}});
  std::istringstream any("bag\n{}\n");
  EXPECT_FALSE(ReadCsv(any, *nested).ok());
}

TEST(CsvTest, CustomDelimiterAndNoHeader) {
  CsvOptions options;
  options.delimiter = '\t';
  options.header = false;
  std::istringstream in("1\tGolf\n2\tJetta\n");
  Result<Bag> bag = ReadCsv(
      in, *MakeSchema({{"id", FieldType::Int()},
                       {"m", FieldType::String()}}),
      options);
  LIPSTICK_ASSERT_OK(bag.status());
  EXPECT_EQ(bag->size(), 2u);
}

constexpr char kDslSource[] = R"WF(
-- two-module workflow used across the DSL tests
module source {
  input Ext(x: int);
  output Out(x: int);
  qout {
    Out = FOREACH Ext GENERATE x;
  }
}

module doubler {
  input In(x: int);
  output Out(y: double);
  qout {
    Out = FOREACH In GENERATE x * 2.0 AS y;
  }
}

node in = source;
node d1 = doubler;
node d2 = doubler as d1_shared;
edge in -> d1 : Out -> In;
edge in -> d2 : Out -> In;
)WF";

TEST(WfDslTest, ParsesModulesNodesEdges) {
  Result<Workflow> wf = ParseWorkflow(kDslSource);
  LIPSTICK_ASSERT_OK(wf.status());
  EXPECT_EQ(wf->nodes().size(), 3u);
  EXPECT_EQ(wf->edges().size(), 2u);
  LIPSTICK_EXPECT_OK(wf->Validate(nullptr));
  // Instance binding via `as`.
  EXPECT_EQ(wf->FindNode("d2").value()->instance, "d1_shared");
  EXPECT_EQ(wf->FindNode("d1").value()->instance, "d1");
  // Module schemas parsed with types.
  const ModuleSpec* doubler = wf->FindModule("doubler").value();
  EXPECT_EQ(doubler->output_schemas.at("Out")->field(0).type.kind(),
            FieldType::Kind::kDouble);
}

TEST(WfDslTest, ParsedWorkflowExecutes) {
  Result<Workflow> wf = ParseWorkflow(kDslSource);
  LIPSTICK_ASSERT_OK(wf.status());
  WorkflowExecutor exec(&*wf, nullptr);
  LIPSTICK_ASSERT_OK(exec.Initialize());
  WorkflowInputs inputs;
  Bag ext;
  ext.Add(T({I(21)}));
  inputs["in"]["Ext"] = std::move(ext);
  auto outputs = exec.Execute(inputs, nullptr);
  LIPSTICK_ASSERT_OK(outputs.status());
  EXPECT_DOUBLE_EQ(
      outputs->at("d1").at("Out").bag.at(0).tuple.at(0).double_value(), 42.0);
}

TEST(WfDslTest, RoundTripThroughDsl) {
  Result<Workflow> wf = ParseWorkflow(kDslSource);
  LIPSTICK_ASSERT_OK(wf.status());
  std::string dsl = WorkflowToDsl(*wf);
  Result<Workflow> again = ParseWorkflow(dsl);
  LIPSTICK_ASSERT_OK(again.status());
  EXPECT_EQ(again->nodes().size(), wf->nodes().size());
  EXPECT_EQ(again->edges().size(), wf->edges().size());
  LIPSTICK_EXPECT_OK(again->Validate(nullptr));
  // Printing the reparsed workflow reproduces the same DSL (fixpoint).
  EXPECT_EQ(WorkflowToDsl(*again), dsl);
}

TEST(WfDslTest, StateAndQstate) {
  const char* source = R"WF(
module acc {
  input In(x: int);
  state Seen(x: int);
  output Total(t: int);
  qstate { Seen = UNION Seen, In; }
  qout {
    G = GROUP Seen ALL;
    Total = FOREACH G GENERATE SUM(Seen.x) AS t;
  }
}
node a = acc;
)WF";
  Result<Workflow> wf = ParseWorkflow(source);
  LIPSTICK_ASSERT_OK(wf.status());
  LIPSTICK_EXPECT_OK(wf->Validate(nullptr));
  const ModuleSpec* acc = wf->FindModule("acc").value();
  EXPECT_EQ(acc->qstate.statements.size(), 1u);
  EXPECT_EQ(acc->state_schemas.size(), 1u);
}

TEST(WfDslTest, ErrorsCarryLineNumbers) {
  Result<Workflow> bad1 = ParseWorkflow("module m {\n  bogus Foo(x: int);\n}");
  EXPECT_EQ(bad1.status().code(), StatusCode::kParseError);
  EXPECT_NE(bad1.status().message().find("line 2"), std::string::npos);

  EXPECT_FALSE(ParseWorkflow("node a = ;").ok());
  EXPECT_FALSE(ParseWorkflow("edge a b : R;").ok());          // missing ->
  EXPECT_FALSE(ParseWorkflow("module m { input R(x: blob); }").ok());
  EXPECT_FALSE(ParseWorkflow("module m { qout { A = ").ok());  // open block
  // Pig parse errors surface through MakeModule.
  Result<Workflow> bad_pig =
      ParseWorkflow("module m { qout { A = FILTER; } }\nnode n = m;");
  EXPECT_EQ(bad_pig.status().code(), StatusCode::kParseError);
}

TEST(WfDslTest, FileNotFound) {
  EXPECT_EQ(ParseWorkflowFile("/no/such/file.wf").status().code(),
            StatusCode::kIOError);
}

}  // namespace
}  // namespace lipstick

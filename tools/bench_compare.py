#!/usr/bin/env python3
"""CI perf-regression gate for the Lipstick bench harnesses.

Every bench binary prints one machine-readable line (see
bench/bench_util.h):

    results_json: {"bench":"bench_x","scale":0.02,"metrics":{...}}

Subcommands:

  collect  <out.json> <bench-output-file...>
      Scrapes the results_json lines out of raw bench output and writes
      the unified BENCH_results.json document:
      {"benches": {name: {"scale": s, "metrics": {...}}}}.

  compare  <baseline.json> <results.json> [--threshold PCT] [--update]
      Compares results against the checked-in baseline. Fails (exit 1)
      when a gated metric regressed by more than the threshold (default
      15%). Gated metrics are the "lower is better" ones, recognized by
      unit suffix: _seconds, _ms, _us, _ns, _bytes, _bytes_per_node.
      Unsuffixed metrics (counts, ratios) are informational only.
      Additionally, the `computed_overhead_pct` metric is held to a hard
      absolute ceiling of 2.0 regardless of the baseline (the disarmed
      fault/observability hooks must stay under 2% — see DESIGN.md).
      Armed/opt-in overhead metrics are informational: the ceiling is a
      contract about runs that did not ask for observability.
      --update rewrites the baseline from the results instead of
      comparing (use after an intentional perf change; commit the diff).

Comparisons are only meaningful between runs at the same
LIPSTICK_BENCH_SCALE; a scale mismatch for a bench is an error.
"""

import argparse
import json
import sys

# "Lower is better" unit suffixes, gated against the baseline.
GATED_SUFFIXES = ("_seconds", "_ms", "_us", "_ns",
                  "_bytes", "_bytes_per_node")
# Absolute floors per suffix: below these, timer noise dominates and a
# relative check would flap. (Space metrics are deterministic: no floor.)
NOISE_FLOORS = {"_seconds": 0.05, "_ms": 50.0, "_us": 50000.0,
                "_ns": 5e10, "_bytes": 0.0, "_bytes_per_node": 0.0}
# Hard absolute ceiling for disarmed-hook overhead metrics (percent).
OVERHEAD_CEILING_PCT = 2.0


def gated_suffix(metric):
    for suffix in GATED_SUFFIXES:
        if metric.endswith(suffix):
            return suffix
    return None


def collect(out_path, input_paths):
    benches = {}
    for path in input_paths:
        with open(path, encoding="utf-8") as f:
            text = f.read()
        found = False
        for line in text.splitlines():
            if not line.startswith("results_json:"):
                continue
            doc = json.loads(line[len("results_json:"):].strip())
            benches[doc["bench"]] = {"scale": doc["scale"],
                                     "metrics": doc["metrics"]}
            found = True
        if not found:
            print(f"warning: no results_json line in {path}",
                  file=sys.stderr)
    document = {"benches": benches}
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(document, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"collected {len(benches)} bench result(s) -> {out_path}")
    return 0


def compare(baseline_path, results_path, threshold_pct, update):
    with open(results_path, encoding="utf-8") as f:
        results = json.load(f)["benches"]

    if update:
        with open(baseline_path, "w", encoding="utf-8") as f:
            json.dump({"benches": results}, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"baseline updated from {results_path} -> {baseline_path}")
        return 0

    with open(baseline_path, encoding="utf-8") as f:
        baseline = json.load(f)["benches"]

    failures = []
    checked = 0
    for name, result in sorted(results.items()):
        base = baseline.get(name)
        if base is None:
            print(f"{name}: NEW (no baseline entry; add with --update)")
            continue
        if base["scale"] != result["scale"]:
            failures.append(
                f"{name}: scale mismatch (baseline {base['scale']}, "
                f"results {result['scale']}) — rerun at the same "
                f"LIPSTICK_BENCH_SCALE")
            continue
        for metric, value in sorted(result["metrics"].items()):
            if metric == "computed_overhead_pct":
                checked += 1
                status = "ok" if value <= OVERHEAD_CEILING_PCT else "FAIL"
                print(f"{name}.{metric}: {value:.4f}% "
                      f"(ceiling {OVERHEAD_CEILING_PCT}%) {status}")
                if value > OVERHEAD_CEILING_PCT:
                    failures.append(
                        f"{name}.{metric}: {value:.4f}% exceeds the "
                        f"{OVERHEAD_CEILING_PCT}% disarmed-hook ceiling")
                continue
            suffix = gated_suffix(metric)
            if suffix is None or metric not in base["metrics"]:
                continue
            base_value = base["metrics"][metric]
            checked += 1
            if base_value <= NOISE_FLOORS[suffix] or base_value == 0:
                print(f"{name}.{metric}: {value:g} (baseline {base_value:g},"
                      f" under noise floor; not gated)")
                continue
            delta_pct = 100.0 * (value - base_value) / base_value
            status = "ok" if delta_pct <= threshold_pct else "FAIL"
            print(f"{name}.{metric}: {value:g} vs {base_value:g} "
                  f"({delta_pct:+.1f}%) {status}")
            if delta_pct > threshold_pct:
                failures.append(
                    f"{name}.{metric}: {delta_pct:+.1f}% regression "
                    f"(threshold {threshold_pct}%)")

    print(f"\nchecked {checked} gated metric(s) across "
          f"{len(results)} bench(es)")
    if failures:
        print(f"\n{len(failures)} perf regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("no perf regressions")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_collect = sub.add_parser("collect", help="scrape results_json lines")
    p_collect.add_argument("out")
    p_collect.add_argument("inputs", nargs="+")

    p_compare = sub.add_parser("compare", help="gate results vs baseline")
    p_compare.add_argument("baseline")
    p_compare.add_argument("results")
    p_compare.add_argument("--threshold", type=float, default=15.0,
                           help="max allowed regression in percent")
    p_compare.add_argument("--update", action="store_true",
                           help="rewrite the baseline from the results")

    args = parser.parse_args()
    if args.command == "collect":
        return collect(args.out, args.inputs)
    return compare(args.baseline, args.results, args.threshold, args.update)


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env bash
# Full verification sweep: build and run the test suite in the regular
# configuration and again under ASan+UBSan (-DLIPSTICK_SANITIZE=ON).
# Usage: tools/check.sh [extra ctest args...]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

run_config() {
  local build_dir="$1"; shift
  echo "=== ${build_dir} ($*) ==="
  cmake -B "${repo}/${build_dir}" -S "${repo}" "$@" >/dev/null
  cmake --build "${repo}/${build_dir}" -j "${jobs}"
  ctest --test-dir "${repo}/${build_dir}" --output-on-failure -j "${jobs}" \
        ${CTEST_ARGS[@]+"${CTEST_ARGS[@]}"}
}

CTEST_ARGS=("$@")
run_config build
run_config build-asan -DLIPSTICK_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
echo "All checks passed."

#!/usr/bin/env bash
# Full verification gate, split into individually callable stages so CI
# jobs and local iteration reuse the exact same commands:
#   build  build + ctest in the regular configuration (-Wshadow -Werror),
#   asan   build + ctest under ASan+UBSan in Debug (assertions on, so
#          every executor run re-validates its provenance graph),
#   tidy   clang-tidy over src/ and tools/ (skipped when not installed),
#   tsan   build + concurrency-focused ctest subset under ThreadSanitizer
#          in Debug: the multi-worker executor, the lock-free StringPool
#          and MetricsRegistry, and the workflow generators that drive
#          them with several worker threads,
#   lint   `lipstick lint` over every example workflow, then
#          `lipstick analyze --json` over the same set — any diagnostic
#          of severity warning or above fails the gate, as does a
#          malformed analysis report,
#   crash  crash-consistency gate: the durability and crash-matrix tests
#          (injected torn writes, corrupted frames, and failed fsyncs at
#          50+ distinct positions) plus a CLI-level torn-log recovery
#          smoke on a real workflow file,
#   perf   Release-mode perf smoke: the PERF_BENCHES harnesses at small
#          scale must run to completion; their results_json lines are
#          collected into BENCH_results.json and compared against the
#          checked-in BENCH_baseline.json (tools/bench_compare.py). The
#          compare is enforced when LIPSTICK_PERF_GATE=1 (CI sets this);
#          otherwise it is report-only, since absolute timings differ
#          across machines. Regenerate the baseline on the reference
#          machine with:
#            tools/check.sh perf && python3 tools/bench_compare.py \
#              compare BENCH_baseline.json build-release/BENCH_results.json --update
#   all    every stage, in the order above (the default).
# Usage: tools/check.sh [build|asan|tsan|tidy|lint|crash|perf|all] [extra ctest args...]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

# The one perf-smoke bench list, shared by the perf stage here and the
# bench job in .github/workflows/ci.yml (which calls this stage).
PERF_BENCHES=(bench_prov_size bench_fig7a_zoom bench_fig7b_subgraph_dealerships bench_fig7c_subgraph_arctic bench_obs_overhead bench_fault_overhead bench_wal_overhead bench_analyze)

# Use ccache when available (CI caches it across runs).
CMAKE_LAUNCHER_ARGS=()
if command -v ccache >/dev/null 2>&1; then
  CMAKE_LAUNCHER_ARGS=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

run_config() {
  local build_dir="$1"; shift
  echo "=== ${build_dir} ($*) ==="
  cmake -B "${repo}/${build_dir}" -S "${repo}" \
        ${CMAKE_LAUNCHER_ARGS[@]+"${CMAKE_LAUNCHER_ARGS[@]}"} "$@" >/dev/null
  cmake --build "${repo}/${build_dir}" -j "${jobs}"
  ctest --test-dir "${repo}/${build_dir}" --output-on-failure -j "${jobs}" \
        ${CTEST_ARGS[@]+"${CTEST_ARGS[@]}"}
}

run_build() { run_config build; }

run_asan() {
  run_config build-asan -DLIPSTICK_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug
}

# The tests that actually spin up threads: the multi-worker executor
# (workflow_test, workflowgen_test, property_test, dataflow_test drive it
# with num_workers > 1), the lock-free StringPool (provenance_test), the
# MetricsRegistry + TraceBuffer concurrency tests (obs_test), and the
# snapshot/traversal read-path stress (snapshot_test: concurrent readers,
# work-stealing ParallelFor/ParallelReach, lazy views).
TSAN_TESTS='^(workflow_test|workflowgen_test|property_test|dataflow_test|provenance_test|obs_test|snapshot_test)$'

run_tsan() {
  local saved=(${CTEST_ARGS[@]+"${CTEST_ARGS[@]}"})
  CTEST_ARGS=(-R "${TSAN_TESTS}" ${saved[@]+"${saved[@]}"})
  run_config build-tsan -DLIPSTICK_SANITIZE=THREAD -DCMAKE_BUILD_TYPE=Debug
  CTEST_ARGS=(${saved[@]+"${saved[@]}"})
}

run_tidy() {
  echo "=== clang-tidy ==="
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "clang-tidy not installed; skipping (profile: .clang-tidy)"
    return 0
  fi
  cmake -B "${repo}/build" -S "${repo}" \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  find "${repo}/src" "${repo}/tools" -name '*.cc' -print0 |
    xargs -0 -P "${jobs}" -n 8 clang-tidy -p "${repo}/build" --quiet
}

run_lint() {
  echo "=== lint: examples/workflows ==="
  local cli="${repo}/build/tools/lipstick"
  if [[ ! -x "${cli}" ]]; then
    echo "building lipstick_cli for lint..."
    cmake -B "${repo}/build" -S "${repo}" \
          ${CMAKE_LAUNCHER_ARGS[@]+"${CMAKE_LAUNCHER_ARGS[@]}"} >/dev/null
    cmake --build "${repo}/build" -j "${jobs}" --target lipstick_cli
  fi
  for wf in "${repo}"/examples/workflows/*.wf; do
    echo "--- ${wf#"${repo}"/}"
    "${cli}" lint "${wf}"
    # Static dataflow analysis must also come back clean (exit 0 = no
    # warnings) and produce a well-formed JSON report.
    "${cli}" analyze "${wf}" --json | python3 -m json.tool >/dev/null
  done
}

run_crash() {
  echo "=== crash consistency (durability + crash matrix + CLI recovery) ==="
  cmake -B "${repo}/build" -S "${repo}" \
        ${CMAKE_LAUNCHER_ARGS[@]+"${CMAKE_LAUNCHER_ARGS[@]}"} >/dev/null
  cmake --build "${repo}/build" -j "${jobs}" \
        --target durability_test crash_matrix_test lipstick_cli
  ctest --test-dir "${repo}/build" --output-on-failure -j "${jobs}" \
        -R '^(durability_test|crash_matrix_test)$'

  echo "--- CLI torn-log recovery smoke"
  local cli="${repo}/build/tools/lipstick"
  local work; work="$(mktemp -d)"
  trap 'rm -rf "${work}"' RETURN
  "${cli}" run "${repo}/examples/workflows/running_total.wf" \
           --execs 3 --wal "${work}/wal" --graph "${work}/clean.pg"
  # Tear the tail of the last segment: the final execution's commit is
  # gone, but everything before the last durable savepoint must survive.
  local seg; seg="$(ls "${work}"/wal/wal-*.log | sort | tail -1)"
  local size; size="$(stat -c %s "${seg}")"
  truncate -s "$((size - 5))" "${seg}"
  "${cli}" recover "${work}/wal" --out "${work}/recovered.pg"
  "${cli}" validate "${work}/recovered.pg"
  echo "crash stage OK"
}

run_perf() {
  echo "=== perf smoke (Release, LIPSTICK_BENCH_SCALE=${LIPSTICK_BENCH_SCALE:-0.02}) ==="
  local scale="${LIPSTICK_BENCH_SCALE:-0.02}"
  local build_dir="${repo}/build-release"
  cmake -B "${build_dir}" -S "${repo}" -DCMAKE_BUILD_TYPE=Release \
        ${CMAKE_LAUNCHER_ARGS[@]+"${CMAKE_LAUNCHER_ARGS[@]}"} >/dev/null
  cmake --build "${build_dir}" -j "${jobs}" --target "${PERF_BENCHES[@]}"
  local out outputs=()
  for bench in "${PERF_BENCHES[@]}"; do
    echo "--- ${bench}"
    out="$(LIPSTICK_BENCH_SCALE="${scale}" "${build_dir}/bench/${bench}")" || {
      echo "FAIL: ${bench} exited non-zero"; return 1; }
    [[ -n "${out}" ]] || { echo "FAIL: ${bench} produced no output"; return 1; }
    echo "${out}" | tail -3
    if ! grep -q '^results_json: ' <<<"${out}"; then
      echo "FAIL: ${bench} lost its results_json line"
      return 1
    fi
    if [[ "${bench}" == bench_prov_size ]] &&
       ! grep -q '^memory_stats_json: ' <<<"${out}"; then
      echo "FAIL: bench_prov_size lost its memory_stats_json line"
      return 1
    fi
    echo "${out}" > "${build_dir}/${bench}.out"
    outputs+=("${build_dir}/${bench}.out")
  done

  echo "--- collect + compare vs BENCH_baseline.json"
  python3 "${repo}/tools/bench_compare.py" collect \
          "${build_dir}/BENCH_results.json" "${outputs[@]}"
  if [[ "${LIPSTICK_PERF_GATE:-0}" == "1" ]]; then
    python3 "${repo}/tools/bench_compare.py" compare \
            "${repo}/BENCH_baseline.json" "${build_dir}/BENCH_results.json"
  else
    python3 "${repo}/tools/bench_compare.py" compare \
            "${repo}/BENCH_baseline.json" "${build_dir}/BENCH_results.json" ||
      echo "(report-only: set LIPSTICK_PERF_GATE=1 to enforce)"
  fi
}

stage="${1:-all}"
case "${stage}" in
  build|asan|tsan|tidy|lint|crash|perf)
    shift
    CTEST_ARGS=("$@")
    "run_${stage}"
    exit 0
    ;;
  all) if [[ $# -gt 0 ]]; then shift; fi ;;
  -*|'') ;;  # no stage named: run everything, args go to ctest
  *) echo "unknown stage '${stage}' (build|asan|tsan|tidy|lint|crash|perf|all)"; exit 2 ;;
esac

CTEST_ARGS=("$@")
run_build
run_asan
run_tsan
run_tidy
run_lint
run_crash
run_perf
echo "All checks passed."

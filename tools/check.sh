#!/usr/bin/env bash
# Full verification gate:
#   1. build + ctest in the regular configuration (-Wshadow -Werror),
#   2. build + ctest under ASan+UBSan in Debug (assertions on, so every
#      executor run re-validates its provenance graph),
#   3. clang-tidy over src/ and tools/ (skipped when not installed),
#   4. `lipstick lint` over every example workflow — any diagnostic of
#      severity warning or above fails the gate,
#   5. Release-mode perf smoke: bench_prov_size and bench_fig7a_zoom at
#      small scale must run to completion and produce output (catches
#      crashes and silent regressions in the columnar graph hot paths).
# Usage: tools/check.sh [tidy|perf] [extra ctest args...]
#   tidy  run only the clang-tidy step (useful while iterating).
#   perf  run only the perf smoke step.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

run_config() {
  local build_dir="$1"; shift
  echo "=== ${build_dir} ($*) ==="
  cmake -B "${repo}/${build_dir}" -S "${repo}" "$@" >/dev/null
  cmake --build "${repo}/${build_dir}" -j "${jobs}"
  ctest --test-dir "${repo}/${build_dir}" --output-on-failure -j "${jobs}" \
        ${CTEST_ARGS[@]+"${CTEST_ARGS[@]}"}
}

run_tidy() {
  echo "=== clang-tidy ==="
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "clang-tidy not installed; skipping (profile: .clang-tidy)"
    return 0
  fi
  cmake -B "${repo}/build" -S "${repo}" \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  find "${repo}/src" "${repo}/tools" -name '*.cc' -print0 |
    xargs -0 -P "${jobs}" -n 8 clang-tidy -p "${repo}/build" --quiet
}

run_lint() {
  echo "=== lint: examples/workflows ==="
  local cli="${repo}/build/tools/lipstick"
  for wf in "${repo}"/examples/workflows/*.wf; do
    echo "--- ${wf#"${repo}"/}"
    "${cli}" lint "${wf}"
  done
}

run_perf_smoke() {
  echo "=== perf smoke (Release, LIPSTICK_BENCH_SCALE=0.02) ==="
  local build_dir="${repo}/build-release"
  cmake -B "${build_dir}" -S "${repo}" -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "${build_dir}" -j "${jobs}" \
        --target bench_prov_size bench_fig7a_zoom
  local out
  for bench in bench_prov_size bench_fig7a_zoom; do
    echo "--- ${bench}"
    out="$(LIPSTICK_BENCH_SCALE=0.02 "${build_dir}/bench/${bench}")" || {
      echo "FAIL: ${bench} exited non-zero"; return 1; }
    [[ -n "${out}" ]] || { echo "FAIL: ${bench} produced no output"; return 1; }
    echo "${out}" | tail -3
    if [[ "${bench}" == bench_prov_size ]] &&
       ! grep -q '^memory_stats_json: ' <<<"${out}"; then
      echo "FAIL: bench_prov_size lost its memory_stats_json line"
      return 1
    fi
  done
}

if [[ "${1:-}" == "tidy" ]]; then
  run_tidy
  exit 0
fi
if [[ "${1:-}" == "perf" ]]; then
  run_perf_smoke
  exit 0
fi

CTEST_ARGS=("$@")
run_config build
run_config build-asan -DLIPSTICK_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug
run_tidy
run_lint
run_perf_smoke
echo "All checks passed."

#!/usr/bin/env bash
# Full verification gate, split into individually callable stages so CI
# jobs and local iteration reuse the exact same commands:
#   build  build + ctest in the regular configuration (-Wshadow -Werror),
#   asan   build + ctest under ASan+UBSan in Debug (assertions on, so
#          every executor run re-validates its provenance graph),
#   tidy   clang-tidy over src/ and tools/ (skipped when not installed),
#   tsan   build + concurrency-focused ctest subset under ThreadSanitizer
#          in Debug: the multi-worker executor, the lock-free StringPool
#          and MetricsRegistry, and the workflow generators that drive
#          them with several worker threads,
#   lint   `lipstick lint` over every example workflow, then
#          `lipstick analyze --json` over the same set — any diagnostic
#          of severity warning or above fails the gate, as does a
#          malformed analysis report,
#   crash  crash-consistency gate: the durability and crash-matrix tests
#          (injected torn writes, corrupted frames, and failed fsyncs at
#          50+ distinct positions) plus a CLI-level torn-log recovery
#          smoke on a real workflow file,
#   perf   Release-mode perf smoke: the PERF_BENCHES harnesses at small
#          scale must run to completion; their results_json lines are
#          collected into BENCH_results.json and compared against the
#          checked-in BENCH_baseline.json (tools/bench_compare.py). The
#          compare is enforced when LIPSTICK_PERF_GATE=1 (CI sets this);
#          otherwise it is report-only, since absolute timings differ
#          across machines. Regenerate the baseline on the reference
#          machine with:
#            tools/check.sh perf && python3 tools/bench_compare.py \
#              compare BENCH_baseline.json build-release/BENCH_results.json --update
#   integration
#          end-to-end serve/connect gate: boots `lipstick serve` on an
#          ephemeral port, drives a scripted `query --connect` session
#          (one-shot ops, a batch file, the error envelope), diffs every
#          byte against local-mode output, then SIGTERMs the daemon and
#          verifies a clean drain — nonzero on any output drift, a leaked
#          child process, or a port still listening,
#   soak   multi-client stress of the daemon under ThreadSanitizer:
#          bench_serve with 8 concurrent clients (LIPSTICK_SOAK_SECONDS,
#          default 20), then a second run with LIPSTICK_FAULTS arming the
#          service.read/service.write socket fault points,
#   coverage
#          line-coverage gate: Debug build with -DLIPSTICK_COVERAGE=ON,
#          full ctest suite, then tools/coverage_gate.py (plain gcov, no
#          gcovr needed) enforcing >= 80% line coverage on src/service/,
#   all    every stage, in the order above (the default; coverage and
#          soak excluded — they rebuild the world and run long, CI runs
#          them as dedicated jobs).
# Usage: tools/check.sh [build|asan|tsan|tidy|lint|crash|perf|integration|soak|coverage|all] [extra ctest args...]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

# The one perf-smoke bench list, shared by the perf stage here and the
# bench job in .github/workflows/ci.yml (which calls this stage).
PERF_BENCHES=(bench_prov_size bench_fig7a_zoom bench_fig7b_subgraph_dealerships bench_fig7c_subgraph_arctic bench_obs_overhead bench_fault_overhead bench_wal_overhead bench_analyze bench_pipeline bench_serve)

# Use ccache when available (CI caches it across runs).
CMAKE_LAUNCHER_ARGS=()
if command -v ccache >/dev/null 2>&1; then
  CMAKE_LAUNCHER_ARGS=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

run_config() {
  local build_dir="$1"; shift
  echo "=== ${build_dir} ($*) ==="
  cmake -B "${repo}/${build_dir}" -S "${repo}" \
        ${CMAKE_LAUNCHER_ARGS[@]+"${CMAKE_LAUNCHER_ARGS[@]}"} "$@" >/dev/null
  cmake --build "${repo}/${build_dir}" -j "${jobs}"
  ctest --test-dir "${repo}/${build_dir}" --output-on-failure -j "${jobs}" \
        ${CTEST_ARGS[@]+"${CTEST_ARGS[@]}"}
}

run_build() { run_config build; }

run_asan() {
  run_config build-asan -DLIPSTICK_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug
}

# The tests that actually spin up threads: the multi-worker executor
# (workflow_test, workflowgen_test, property_test, dataflow_test drive it
# with num_workers > 1), the lock-free StringPool (provenance_test), the
# MetricsRegistry + TraceBuffer concurrency tests (obs_test), and the
# snapshot/traversal read-path stress (snapshot_test: concurrent readers,
# work-stealing ParallelFor/ParallelReach, lazy views), the plan engine
# (plan_test: multi-threaded plan execution + the shared PlanViewCache),
# and the query service (service_test: accept/session/worker threads, hot
# reload, concurrent clients).
TSAN_TESTS='^(workflow_test|workflowgen_test|property_test|dataflow_test|provenance_test|obs_test|snapshot_test|plan_test|service_test)$'

run_tsan() {
  local saved=(${CTEST_ARGS[@]+"${CTEST_ARGS[@]}"})
  CTEST_ARGS=(-R "${TSAN_TESTS}" ${saved[@]+"${saved[@]}"})
  run_config build-tsan -DLIPSTICK_SANITIZE=THREAD -DCMAKE_BUILD_TYPE=Debug
  CTEST_ARGS=(${saved[@]+"${saved[@]}"})
}

run_tidy() {
  echo "=== clang-tidy ==="
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "clang-tidy not installed; skipping (profile: .clang-tidy)"
    return 0
  fi
  cmake -B "${repo}/build" -S "${repo}" \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  find "${repo}/src" "${repo}/tools" -name '*.cc' -print0 |
    xargs -0 -P "${jobs}" -n 8 clang-tidy -p "${repo}/build" --quiet
}

run_lint() {
  echo "=== lint: examples/workflows ==="
  local cli="${repo}/build/tools/lipstick"
  if [[ ! -x "${cli}" ]]; then
    echo "building lipstick_cli for lint..."
    cmake -B "${repo}/build" -S "${repo}" \
          ${CMAKE_LAUNCHER_ARGS[@]+"${CMAKE_LAUNCHER_ARGS[@]}"} >/dev/null
    cmake --build "${repo}/build" -j "${jobs}" --target lipstick_cli
  fi
  for wf in "${repo}"/examples/workflows/*.wf; do
    echo "--- ${wf#"${repo}"/}"
    "${cli}" lint "${wf}"
    # Static dataflow analysis must also come back clean (exit 0 = no
    # warnings) and produce a well-formed JSON report. dealership_mini
    # needs its example CSV bindings: without them the external relations
    # are statically empty and every derivation flags D0403.
    local analyze_args=()
    if [[ "${wf}" == */dealership_mini.wf ]]; then
      local exdir="${repo}/examples/workflows"
      analyze_args=(--input "req.Ext=${exdir}/dealership_requests.csv"
                    --state "dealer1.Cars=${exdir}/dealership_cars1.csv"
                    --state "dealer2.Cars=${exdir}/dealership_cars2.csv")
    fi
    "${cli}" analyze "${wf}" --json \
             ${analyze_args[@]+"${analyze_args[@]}"} \
        | python3 -m json.tool >/dev/null
  done

  echo "--- explain --json goldens (examples/goldens)"
  # The optimizer's rewrite reports and the cost model's predictions are
  # part of the tool's contract: `explain --json` over a deterministic
  # dealership run must match the committed goldens byte for byte.
  local work
  work="$(mktemp -d)"
  # shellcheck disable=SC2064
  trap "rm -rf '${work}'" RETURN
  local ex="${repo}/examples/workflows"
  "${cli}" run "${ex}/dealership_mini.wf" --execs 3 \
           --input "req.Ext=${ex}/dealership_requests.csv" \
           --state "dealer1.Cars=${ex}/dealership_cars1.csv" \
           --state "dealer2.Cars=${ex}/dealership_cars2.csv" \
           --graph "${work}/g.pg" >/dev/null
  "${cli}" explain "${work}/g.pg" stats --json \
           > "${work}/explain_stats.json"
  "${cli}" explain "${work}/g.pg" \
           "zoomout dealer | subgraph 281474976710657 | stats" --json \
           > "${work}/explain_pipeline.json"
  for name in explain_stats explain_pipeline; do
    python3 -m json.tool < "${work}/${name}.json" >/dev/null || {
      echo "FAIL: ${name} is not valid JSON"; return 1; }
    diff -u "${repo}/examples/goldens/${name}.json" "${work}/${name}.json" || {
      echo "FAIL: ${name} drifted from examples/goldens/${name}.json"
      return 1; }
  done
  echo "explain goldens OK"
}

run_crash() {
  echo "=== crash consistency (durability + crash matrix + CLI recovery) ==="
  cmake -B "${repo}/build" -S "${repo}" \
        ${CMAKE_LAUNCHER_ARGS[@]+"${CMAKE_LAUNCHER_ARGS[@]}"} >/dev/null
  cmake --build "${repo}/build" -j "${jobs}" \
        --target durability_test crash_matrix_test lipstick_cli
  ctest --test-dir "${repo}/build" --output-on-failure -j "${jobs}" \
        -R '^(durability_test|crash_matrix_test)$'

  echo "--- CLI torn-log recovery smoke"
  local cli="${repo}/build/tools/lipstick"
  local work; work="$(mktemp -d)"
  trap 'rm -rf "${work}"' RETURN
  "${cli}" run "${repo}/examples/workflows/running_total.wf" \
           --execs 3 --wal "${work}/wal" --graph "${work}/clean.pg"
  # Tear the tail of the last segment: the final execution's commit is
  # gone, but everything before the last durable savepoint must survive.
  local seg; seg="$(ls "${work}"/wal/wal-*.log | sort | tail -1)"
  local size; size="$(stat -c %s "${seg}")"
  truncate -s "$((size - 5))" "${seg}"
  "${cli}" recover "${work}/wal" --out "${work}/recovered.pg"
  "${cli}" validate "${work}/recovered.pg"
  echo "crash stage OK"
}

run_perf() {
  echo "=== perf smoke (Release, LIPSTICK_BENCH_SCALE=${LIPSTICK_BENCH_SCALE:-0.02}) ==="
  local scale="${LIPSTICK_BENCH_SCALE:-0.02}"
  local build_dir="${repo}/build-release"
  cmake -B "${build_dir}" -S "${repo}" -DCMAKE_BUILD_TYPE=Release \
        ${CMAKE_LAUNCHER_ARGS[@]+"${CMAKE_LAUNCHER_ARGS[@]}"} >/dev/null
  cmake --build "${build_dir}" -j "${jobs}" --target "${PERF_BENCHES[@]}"
  local out outputs=()
  for bench in "${PERF_BENCHES[@]}"; do
    echo "--- ${bench}"
    out="$(LIPSTICK_BENCH_SCALE="${scale}" "${build_dir}/bench/${bench}")" || {
      echo "FAIL: ${bench} exited non-zero"; return 1; }
    [[ -n "${out}" ]] || { echo "FAIL: ${bench} produced no output"; return 1; }
    echo "${out}" | tail -3
    if ! grep -q '^results_json: ' <<<"${out}"; then
      echo "FAIL: ${bench} lost its results_json line"
      return 1
    fi
    if [[ "${bench}" == bench_prov_size ]] &&
       ! grep -q '^memory_stats_json: ' <<<"${out}"; then
      echo "FAIL: bench_prov_size lost its memory_stats_json line"
      return 1
    fi
    echo "${out}" > "${build_dir}/${bench}.out"
    outputs+=("${build_dir}/${bench}.out")
  done

  echo "--- collect + compare vs BENCH_baseline.json"
  python3 "${repo}/tools/bench_compare.py" collect \
          "${build_dir}/BENCH_results.json" "${outputs[@]}"
  if [[ "${LIPSTICK_PERF_GATE:-0}" == "1" ]]; then
    python3 "${repo}/tools/bench_compare.py" compare \
            "${repo}/BENCH_baseline.json" "${build_dir}/BENCH_results.json"
  else
    python3 "${repo}/tools/bench_compare.py" compare \
            "${repo}/BENCH_baseline.json" "${build_dir}/BENCH_results.json" ||
      echo "(report-only: set LIPSTICK_PERF_GATE=1 to enforce)"
  fi
}

run_integration() {
  echo "=== integration: serve/connect end-to-end ==="
  local cli="${repo}/build/tools/lipstick"
  cmake -B "${repo}/build" -S "${repo}" \
        ${CMAKE_LAUNCHER_ARGS[@]+"${CMAKE_LAUNCHER_ARGS[@]}"} >/dev/null
  cmake --build "${repo}/build" -j "${jobs}" --target lipstick_cli

  local work serve_pid=""
  work="$(mktemp -d)"
  # shellcheck disable=SC2064
  trap "[[ -n \"\${serve_pid}\" ]] && kill -9 \"\${serve_pid}\" 2>/dev/null; rm -rf '${work}'" RETURN

  echo "--- build a graph to serve"
  local ex="${repo}/examples/workflows"
  "${cli}" run "${ex}/dealership_mini.wf" --execs 3 \
           --input "req.Ext=${ex}/dealership_requests.csv" \
           --state "dealer1.Cars=${ex}/dealership_cars1.csv" \
           --state "dealer2.Cars=${ex}/dealership_cars2.csv" \
           --graph "${work}/g.pg"

  # Pick a real token node for the pointed queries (ids are deterministic
  # for fixed inputs, but extracting one keeps the script honest).
  local id
  id="$("${cli}" query "${work}/g.pg" find --label token | head -1 |
        awk '{print $1}')"
  [[ -n "${id}" ]] || { echo "FAIL: no token node found"; return 1; }

  # The scripted session: one-shot ops plus a batch file. Every query must
  # produce byte-identical output in local and serve mode.
  local ops=("stats" "find --label token" "expr ${id}" "subgraph ${id}"
             "zoomout dealer")
  cat > "${work}/batch.txt" <<EOF
stats
find --label token
subgraph ${id}
zoomout dealer | subgraph ${id} | stats
EOF

  echo "--- local-mode golden outputs"
  local i=0
  for op in "${ops[@]}"; do
    # shellcheck disable=SC2086
    "${cli}" query "${work}/g.pg" ${op} > "${work}/local.${i}.out"
    i=$((i + 1))
  done
  "${cli}" query "${work}/g.pg" --batch "${work}/batch.txt" \
           > "${work}/local.batch.out"

  echo "--- boot lipstick serve (ephemeral port)"
  "${cli}" serve "${work}/g.pg" --port 0 > "${work}/serve.log" 2>&1 &
  serve_pid=$!
  local port="" tries=0
  while [[ -z "${port}" ]]; do
    port="$(sed -n 's/^serve: listening on [0-9.]*:\([0-9]*\)$/\1/p' \
            "${work}/serve.log")"
    [[ -n "${port}" ]] && break
    if ! kill -0 "${serve_pid}" 2>/dev/null; then
      echo "FAIL: serve exited before listening"; cat "${work}/serve.log"
      serve_pid=""; return 1
    fi
    tries=$((tries + 1))
    if [[ "${tries}" -gt 100 ]]; then
      echo "FAIL: serve never printed its port"; cat "${work}/serve.log"
      return 1
    fi
    sleep 0.1
  done
  echo "serving on port ${port} (pid ${serve_pid})"

  echo "--- remote session must match local byte-for-byte"
  i=0
  for op in "${ops[@]}"; do
    # shellcheck disable=SC2086
    "${cli}" query --connect "127.0.0.1:${port}" ${op} \
             > "${work}/remote.${i}.out"
    diff -u "${work}/local.${i}.out" "${work}/remote.${i}.out" || {
      echo "FAIL: output drift on '${op}'"; return 1; }
    i=$((i + 1))
  done
  "${cli}" query --connect "127.0.0.1:${port}" --batch "${work}/batch.txt" \
           > "${work}/remote.batch.out"
  diff -u "${work}/local.batch.out" "${work}/remote.batch.out" || {
    echo "FAIL: batch output drift"; return 1; }

  echo "--- pipeline + explain must match local byte-for-byte"
  local pipe_q="zoomout dealer | subgraph ${id} | stats"
  "${cli}" query "${work}/g.pg" "${pipe_q}" > "${work}/local.pipe.out"
  "${cli}" query --connect "127.0.0.1:${port}" "${pipe_q}" \
           > "${work}/remote.pipe.out"
  diff -u "${work}/local.pipe.out" "${work}/remote.pipe.out" || {
    echo "FAIL: pipeline output drift"; return 1; }
  "${cli}" query "${work}/g.pg" explain "${pipe_q}" \
           > "${work}/local.explain.out"
  "${cli}" query --connect "127.0.0.1:${port}" explain "${pipe_q}" \
           > "${work}/remote.explain.out"
  diff -u "${work}/local.explain.out" "${work}/remote.explain.out" || {
    echo "FAIL: explain output drift"; return 1; }

  echo "--- error envelope carries the wire code"
  if "${cli}" query --connect "127.0.0.1:${port}" badop \
       2> "${work}/err.out"; then
    echo "FAIL: bad op did not exit nonzero"; return 1
  fi
  grep -q "error: invalid_argument:" "${work}/err.out" || {
    echo "FAIL: missing error envelope:"; cat "${work}/err.out"; return 1; }

  echo "--- SIGTERM must drain cleanly"
  kill -TERM "${serve_pid}"
  local rc=0
  wait "${serve_pid}" || rc=$?
  serve_pid=""
  if [[ "${rc}" -ne 0 ]]; then
    echo "FAIL: serve exited ${rc} on SIGTERM"; cat "${work}/serve.log"
    return 1
  fi
  grep -q "serve: drained, exiting" "${work}/serve.log" || {
    echo "FAIL: no drain message"; cat "${work}/serve.log"; return 1; }
  # The port must be released: a fresh connect has to be refused.
  if (exec 3<>"/dev/tcp/127.0.0.1/${port}") 2>/dev/null; then
    exec 3>&- 3<&-
    echo "FAIL: port ${port} still listening after drain"; return 1
  fi
  echo "integration stage OK"
}

run_soak() {
  echo "=== soak: bench_serve under TSan (8 clients) ==="
  local secs="${LIPSTICK_SOAK_SECONDS:-20}"
  local build_dir="${repo}/build-tsan"
  cmake -B "${build_dir}" -S "${repo}" -DLIPSTICK_SANITIZE=THREAD \
        -DCMAKE_BUILD_TYPE=Debug \
        ${CMAKE_LAUNCHER_ARGS[@]+"${CMAKE_LAUNCHER_ARGS[@]}"} >/dev/null
  cmake --build "${build_dir}" -j "${jobs}" --target bench_serve

  echo "--- clean soak (${secs}s)"
  LIPSTICK_BENCH_SCALE="${LIPSTICK_BENCH_SCALE:-0.05}" \
    "${build_dir}/bench/bench_serve" --clients 8 --seconds "${secs}"

  echo "--- fault soak: injected socket errors on service.read/service.write"
  LIPSTICK_BENCH_SCALE="${LIPSTICK_BENCH_SCALE:-0.05}" \
    LIPSTICK_FAULTS='service.read:p=0.02:seed=7;service.write:p=0.02:seed=11' \
    "${build_dir}/bench/bench_serve" --clients 8 --seconds "${secs}"
  echo "soak stage OK"
}

run_coverage() {
  echo "=== coverage: gcov line-coverage gate on src/service/ ==="
  local build_dir="${repo}/build-coverage"
  # No ccache here: cached objects can ship stale .gcno note files, which
  # silently zeroes the very numbers this stage gates on.
  cmake -B "${build_dir}" -S "${repo}" -DLIPSTICK_COVERAGE=ON \
        -DCMAKE_BUILD_TYPE=Debug >/dev/null
  cmake --build "${build_dir}" -j "${jobs}"
  # Stale counters from a previous run would inflate the numbers.
  find "${build_dir}" -name '*.gcda' -delete
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}" \
        ${CTEST_ARGS[@]+"${CTEST_ARGS[@]}"}
  python3 "${repo}/tools/coverage_gate.py" "${build_dir}" \
          --filter src/service/ --min 80 \
          --out "${build_dir}/COVERAGE_service.json"
}

stage="${1:-all}"
case "${stage}" in
  build|asan|tsan|tidy|lint|crash|perf|integration|soak|coverage)
    shift
    CTEST_ARGS=("$@")
    "run_${stage}"
    exit 0
    ;;
  all) if [[ $# -gt 0 ]]; then shift; fi ;;
  -*|'') ;;  # no stage named: run everything, args go to ctest
  *) echo "unknown stage '${stage}' (build|asan|tsan|tidy|lint|crash|perf|integration|soak|coverage|all)"; exit 2 ;;
esac

CTEST_ARGS=("$@")
run_build
run_asan
run_tsan
run_tidy
run_lint
run_crash
run_perf
run_integration
echo "All checks passed."

// lipstick — command-line front end: run workflow definition files with
// provenance tracking, and query saved provenance graphs (the standalone
// "Query Processor" of the paper's architecture, Section 5.1).
//
// Usage:
//   lipstick lint <workflow.wf> [--json]
//   lipstick analyze <workflow.wf> [--execs N] [--input node.Rel=file.csv]...
//                [--state instance.Rel=file.csv]... [--json]
//   lipstick validate <workflow.wf | graph.pg>
//   lipstick run <workflow.wf> [--execs N] [--input node.Rel=file.csv]...
//                [--state instance.Rel=file.csv]... [--graph out.pg]
//                [--workers N] [--print-outputs]
//                [--wal <dir>] [--wal-fsync never|commit|savepoint]
//   lipstick recover <wal-dir> [--out g.pg] [--keep-uncommitted] [--repair]
//   lipstick query <graph.pg> stats
//   lipstick query <graph.pg> find [--label L] [--role R] [--payload S]
//   lipstick query <graph.pg> expr <node-id>
//   lipstick query <graph.pg> depends <target-id> <source-id>
//   lipstick query <graph.pg> subgraph <node-id> [--out g.dot]
//   lipstick query <graph.pg> delete <node-id> [--out g.pg]
//   lipstick query <graph.pg> zoomout <module> [<module>...] [--out g.pg]
//   lipstick query <graph.pg> dot [--out graph.dot]
//   lipstick query <graph.pg> opm --out graph.xml
//   lipstick query <graph.pg> "zoomout m1,m2 | subgraph 42 | stats" [--out f]
//   lipstick explain <graph.pg> <query...> [--json]
//   lipstick query <graph.pg> --batch <queries.txt> [--threads N]
//   lipstick serve [name=]graph.pg... [--host H] [--port P] [--workers N]
//                  [--queue-depth N] [--deadline-ms D] [--cache N]
//                  [--query-threads N]
//   lipstick query --connect host:port [--graph NAME] [--deadline-ms D]
//                  stats|find|expr|depends|subgraph|zoomout|ping|graphs|
//                  reload|metricz ... | --batch <queries.txt>
//
// Every `query` form accepts `--threads N`: parallel scans and traversals
// for the one-shot queries, concurrent lines over one shared snapshot for
// --batch (one read-only query per line — single ops or `|` pipelines;
// blank lines and # comments skipped, errors report 1-based line numbers).
//
// A `|` anywhere in the query folds the whole command line into one
// pipeline plan: view stages (zoomout, subgraph, restrict, delete) compose
// into a single mask without intermediate materialization, then an
// optional terminal (stats, find, expr, depends) renders over it.
// `explain` prints the optimized plan with predicted cardinalities
// instead of running it.
//
// `serve` runs the long-lived query daemon of the service layer; `query
// --connect` talks to it over the length-prefixed JSON protocol and
// prints byte-identical output to local mode, so the same golden files
// check both paths (tools/check.sh `integration`).
//
// Workflows that rely on C++ UDFs cannot be run from the CLI (register
// them via the library API instead); everything else works end to end.

#include <csignal>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "analysis/cost_model.h"
#include "analysis/dataflow.h"
#include "analysis/diagnostics.h"
#include "analysis/graph_validator.h"
#include "analysis/workflow_linter.h"
#include "obs/json.h"
#include "common/fault.h"
#include "common/str_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "provenance/deletion.h"
#include "provenance/dot.h"
#include "provenance/opm.h"
#include "provenance/provio.h"
#include "provenance/query.h"
#include "provenance/recovery.h"
#include "provenance/wal.h"
#include "provenance/semiring.h"
#include "provenance/snapshot.h"
#include "provenance/subgraph.h"
#include "provenance/traverse.h"
#include "provenance/view.h"
#include "provenance/zoom.h"
#include "relational/csv.h"
#include "service/client.h"
#include "service/ops.h"
#include "service/protocol.h"
#include "service/registry.h"
#include "service/server.h"
#include "workflow/executor.h"
#include "workflow/wfdsl.h"

using namespace lipstick;

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "lipstick: %s\n", message.c_str());
  return 1;
}

int FailUsage() {
  std::fprintf(stderr,
               "usage: lipstick lint <workflow.wf> [--json]\n"
               "       lipstick analyze <workflow.wf> [--execs N] "
               "[--input node.Rel=f.csv]... [--state inst.Rel=f.csv]... "
               "[--interval] [--json]\n"
               "       lipstick validate <workflow.wf | graph.pg>\n"
               "       lipstick run <workflow.wf> [--execs N] "
               "[--input node.Rel=f.csv]... [--state inst.Rel=f.csv]... "
               "[--graph out.pg] [--workers N] [--print-outputs] "
               "[--wal <dir>] [--wal-fsync never|commit|savepoint]\n"
               "       lipstick recover <wal-dir> [--out g.pg] "
               "[--keep-uncommitted] [--repair]\n"
               "       lipstick query <graph.pg> stats|find|expr|depends|"
               "subgraph|delete|zoomout|restrict|dot|opm|validate ... "
               "[--threads N]\n"
               "       lipstick query <graph.pg> \"<stage> | <stage> | ...\" "
               "[--out f]\n"
               "       lipstick explain <graph.pg> <query...> [--json]\n"
               "       lipstick query <graph.pg> --batch <queries.txt> "
               "[--threads N]\n"
               "       lipstick serve [name=]graph.pg... [--host H] "
               "[--port P] [--workers N] [--queue-depth N] [--deadline-ms D] "
               "[--cache N] [--query-threads N]\n"
               "       lipstick query --connect host:port [--graph NAME] "
               "[--deadline-ms D] <op> ... | --batch <queries.txt>\n");
  return 2;
}

struct Binding {
  std::string owner;     // node id or instance name
  std::string relation;  // relation name
  std::string path;      // csv file
};

/// Parses "owner.Relation=path".
Result<Binding> ParseBinding(const std::string& arg) {
  size_t eq = arg.find('=');
  size_t dot = arg.find('.');
  if (eq == std::string::npos || dot == std::string::npos || dot > eq) {
    return Status::InvalidArgument(
        StrCat("expected owner.Relation=file.csv, got '", arg, "'"));
  }
  return Binding{arg.substr(0, dot), arg.substr(dot + 1, eq - dot - 1),
                 arg.substr(eq + 1)};
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Prints the sink and returns the process exit code: nonzero when any
/// finding is a warning or worse (the check.sh lint gate keys on this).
int ReportDiagnostics(analysis::DiagnosticSink* sink, const std::string& file,
                      bool json) {
  sink->Sort();
  std::string rendered = json ? sink->RenderJson(file) : sink->RenderText(file);
  std::fputs(rendered.c_str(), stdout);
  size_t errors = sink->CountAtLeast(analysis::Severity::kError);
  size_t flagged = sink->CountAtLeast(analysis::Severity::kWarning);
  if (!json) {
    std::printf("%s: %zu error(s), %zu warning(s), %zu note(s)\n",
                file.c_str(), errors, flagged - errors,
                sink->size() - flagged);
  }
  return flagged > 0 ? 1 : 0;
}

int CmdLint(const std::vector<std::string>& args) {
  if (args.empty()) return FailUsage();
  bool json = false;
  std::string path;
  for (const std::string& arg : args) {
    if (arg == "--json") {
      json = true;
    } else if (path.empty()) {
      path = arg;
    } else {
      return Fail(StrCat("unknown lint argument '", arg, "'"));
    }
  }
  if (path.empty()) return FailUsage();
  Result<Workflow> wf = ParseWorkflowFile(path);
  if (!wf.ok()) return Fail(wf.status().ToString());
  pig::UdfRegistry udfs;
  analysis::DiagnosticSink sink;
  analysis::LintWorkflow(*wf, &udfs, &sink);
  return ReportDiagnostics(&sink, path, json);
}

/// Renders a cardinality interval as JSON: {"lo": N, "hi": M} with a null
/// hi when the interval is unbounded, plus "exact" for quick consumers.
std::string CardJson(const analysis::CardInterval& c) {
  std::string out = StrCat("{\"lo\":", c.lo, ",\"hi\":");
  if (c.hi == analysis::kCardInf) {
    out += "null";
  } else {
    out += StrCat(c.hi);
  }
  out += StrCat(",\"exact\":", c.exact() ? "true" : "false", "}");
  return out;
}

int CmdAnalyze(const std::vector<std::string>& args) {
  if (args.empty()) return FailUsage();
  const std::string& wf_path = args[0];
  int execs = 1;
  bool json = false;
  bool force_interval = false;
  std::vector<Binding> inputs, states;
  for (size_t i = 1; i < args.size(); ++i) {
    auto need_value = [&](const char* flag) -> Result<std::string> {
      if (i + 1 >= args.size()) {
        return Status::InvalidArgument(StrCat(flag, " needs a value"));
      }
      return args[++i];
    };
    if (args[i] == "--execs") {
      auto v = need_value("--execs");
      if (!v.ok()) return Fail(v.status().ToString());
      execs = std::atoi(v->c_str());
    } else if (args[i] == "--json") {
      json = true;
    } else if (args[i] == "--interval") {
      force_interval = true;
    } else if (args[i] == "--input" || args[i] == "--state") {
      bool is_input = args[i] == "--input";
      auto v = need_value(is_input ? "--input" : "--state");
      if (!v.ok()) return Fail(v.status().ToString());
      Result<Binding> binding = ParseBinding(*v);
      if (!binding.ok()) return Fail(binding.status().ToString());
      (is_input ? inputs : states).push_back(std::move(*binding));
    } else {
      return Fail(StrCat("unknown analyze flag '", args[i], "'"));
    }
  }

  std::error_code ec;
  if (std::filesystem::is_directory(wf_path, ec)) {
    return Fail(StrCat(wf_path, " is a directory, not a workflow file"));
  }
  Result<Workflow> wf = ParseWorkflowFile(wf_path);
  if (!wf.ok()) return Fail(wf.status().ToString());
  pig::UdfRegistry udfs;

  analysis::AnalyzeOptions opt;
  opt.executions = execs;
  opt.force_interval = force_interval;
  opt.udfs = &udfs;
  for (const Binding& b : states) {
    const ModuleSpec* spec = nullptr;
    for (const WorkflowNode& node : wf->nodes()) {
      if (node.instance == b.owner) {
        auto found = wf->FindModule(node.module);
        if (found.ok()) spec = *found;
      }
    }
    if (spec == nullptr) {
      return Fail(StrCat("--state: unknown instance '", b.owner, "'"));
    }
    auto schema_it = spec->state_schemas.find(b.relation);
    if (schema_it == spec->state_schemas.end()) {
      return Fail(StrCat("--state: module ", spec->name,
                         " has no state relation '", b.relation, "'"));
    }
    Result<Bag> bag = ReadCsvFile(b.path, *schema_it->second);
    if (!bag.ok()) return Fail(bag.status().ToString());
    opt.initial_state[b.owner][b.relation] = std::move(*bag);
  }
  for (const Binding& b : inputs) {
    Result<const WorkflowNode*> node = wf->FindNode(b.owner);
    if (!node.ok()) return Fail(node.status().ToString());
    Result<const ModuleSpec*> spec = wf->FindModule((*node)->module);
    if (!spec.ok()) return Fail(spec.status().ToString());
    auto schema_it = (*spec)->input_schemas.find(b.relation);
    if (schema_it == (*spec)->input_schemas.end()) {
      return Fail(StrCat("--input: module ", (*spec)->name,
                         " has no input relation '", b.relation, "'"));
    }
    Result<Bag> bag = ReadCsvFile(b.path, *schema_it->second);
    if (!bag.ok()) return Fail(bag.status().ToString());
    opt.inputs[b.owner][b.relation] = std::move(*bag);
  }

  analysis::DiagnosticSink sink;
  analysis::LintWorkflow(*wf, &udfs, &sink);
  Result<analysis::WorkflowFacts> facts =
      analysis::AnalyzeDataflow(*wf, opt, &sink);
  if (!facts.ok()) return Fail(facts.status().ToString());
  analysis::CostReport cost = analysis::PredictCost(*facts);
  sink.Sort();
  const char* mode = facts->concrete ? "concrete" : "interval";

  if (json) {
    std::string out = "{";
    out += StrCat("\"file\":\"", obs::JsonEscape(wf_path), "\",");
    out += StrCat("\"mode\":\"", mode, "\",");
    out += StrCat("\"executions\":", facts->executions, ",");
    out += StrCat("\"diagnostics\":", sink.RenderJson(wf_path), ",");
    out += StrCat("\"cost\":{\"nodes\":", CardJson(cost.nodes),
                  ",\"edges\":", CardJson(cost.edges),
                  ",\"est_nodes\":", static_cast<uint64_t>(cost.est_nodes),
                  ",\"est_edges\":", static_cast<uint64_t>(cost.est_edges),
                  ",\"bytes\":{\"columns\":", CardJson(cost.column_bytes),
                  ",\"edge_arena\":", CardJson(cost.edge_arena_bytes),
                  ",\"csr\":", CardJson(cost.csr_bytes),
                  ",\"values\":", CardJson(cost.value_bytes),
                  ",\"interner\":", CardJson(cost.interner_bytes),
                  ",\"invocations\":", CardJson(cost.invocation_bytes),
                  ",\"total\":", CardJson(cost.total_bytes),
                  ",\"est\":", cost.est_bytes, "},\"per_node\":[");
    for (size_t i = 0; i < cost.per_node.size(); ++i) {
      const analysis::ModuleCost& mc = cost.per_node[i];
      if (i > 0) out += ",";
      out += StrCat("{\"node\":\"", obs::JsonEscape(mc.node_id),
                    "\",\"module\":\"", obs::JsonEscape(mc.module),
                    "\",\"instance\":\"", obs::JsonEscape(mc.instance),
                    "\",\"invocations\":", mc.invocations,
                    ",\"nodes\":", CardJson(mc.nodes),
                    ",\"edges\":", CardJson(mc.edges), "}");
    }
    out += "]},\"relations\":{";
    bool first_node = true;
    for (const auto& [node_id, rels] : facts->relations) {
      if (!first_node) out += ",";
      first_node = false;
      out += StrCat("\"", obs::JsonEscape(node_id), "\":{");
      bool first_rel = true;
      for (const auto& [rel_name, rf] : rels) {
        if (!first_rel) out += ",";
        first_rel = false;
        out += StrCat("\"", obs::JsonEscape(rel_name),
                      "\":{\"card\":", CardJson(rf.card.total),
                      ",\"est\":", static_cast<uint64_t>(rf.est),
                      ",\"schema\":\"",
                      obs::JsonEscape(rf.schema ? rf.schema->ToString() : ""),
                      "\"}");
      }
      out += "}";
    }
    out += "},\"deletion\":[";
    for (size_t i = 0; i < facts->deletion.size(); ++i) {
      const analysis::DeletionFact& d = facts->deletion[i];
      if (i > 0) out += ",";
      out += StrCat("{\"node\":\"", obs::JsonEscape(d.node_id),
                    "\",\"relation\":\"", obs::JsonEscape(d.relation),
                    "\",\"classification\":\"",
                    d.amplifying ? "amplifying" : "safe",
                    "\",\"reaches_state\":",
                    d.reaches_state ? "true" : "false", ",\"reason\":\"",
                    obs::JsonEscape(d.reason), "\"}");
    }
    out += "],\"notes\":[";
    for (size_t i = 0; i < facts->notes.size(); ++i) {
      if (i > 0) out += ",";
      out += StrCat("\"", obs::JsonEscape(facts->notes[i]), "\"");
    }
    out += "]}\n";
    std::fputs(out.c_str(), stdout);
    return sink.CountAtLeast(analysis::Severity::kWarning) > 0 ? 1 : 0;
  }

  std::printf("analysis of %s: %s mode, %d execution(s)\n", wf_path.c_str(),
              mode, facts->executions);
  std::fputs(sink.RenderText(wf_path).c_str(), stdout);

  std::printf("\nrelation facts:\n");
  for (const auto& [node_id, rels] : facts->relations) {
    std::printf("  %s:\n", node_id.c_str());
    for (const auto& [rel_name, rf] : rels) {
      std::printf("    %-16s card %-12s est %-8.0f %s\n", rel_name.c_str(),
                  rf.card.total.ToString().c_str(), rf.est,
                  rf.schema ? rf.schema->ToString().c_str() : "(no schema)");
    }
  }

  std::printf("\npredicted provenance (per workflow node):\n");
  std::printf("  %-16s %-12s %-14s %-14s\n", "node", "invocations", "nodes",
              "edges");
  for (const analysis::ModuleCost& mc : cost.per_node) {
    std::printf("  %-16s %-12d %-14s %-14s\n", mc.node_id.c_str(),
                mc.invocations, mc.nodes.ToString().c_str(),
                mc.edges.ToString().c_str());
  }
  std::printf("  %-16s %-12s %-14s %-14s\n", "total", "",
              cost.nodes.ToString().c_str(), cost.edges.ToString().c_str());
  if (!facts->concrete) {
    std::printf("  point estimate: %.0f nodes, %.0f edges\n", cost.est_nodes,
                cost.est_edges);
  }

  std::printf("\npredicted bytes (columnar layout):\n");
  auto row = [](const char* label, const analysis::CardInterval& c) {
    std::printf("  %-16s %s\n", label, c.ToString().c_str());
  };
  row("columns", cost.column_bytes);
  row("edge arena", cost.edge_arena_bytes);
  row("csr index", cost.csr_bytes);
  row("values", cost.value_bytes);
  row("interner", cost.interner_bytes);
  row("invocations", cost.invocation_bytes);
  row("total", cost.total_bytes);
  std::printf("  %-16s %llu\n", "point estimate",
              static_cast<unsigned long long>(cost.est_bytes));

  std::printf("\ndeletion propagation:\n");
  if (facts->deletion.empty()) {
    std::printf("  (no workflow inputs)\n");
  }
  for (const analysis::DeletionFact& d : facts->deletion) {
    if (d.amplifying) {
      std::printf("  %s.%s: amplifying — %s\n", d.node_id.c_str(),
                  d.relation.c_str(), d.reason.c_str());
    } else {
      std::printf("  %s.%s: safe%s\n", d.node_id.c_str(), d.relation.c_str(),
                  d.reaches_state ? " (accumulates in state)" : "");
    }
  }
  for (const std::string& note : facts->notes) {
    std::printf("note: %s\n", note.c_str());
  }
  return sink.CountAtLeast(analysis::Severity::kWarning) > 0 ? 1 : 0;
}

int CmdValidateGraph(const std::string& path) {
  Result<ProvenanceGraph> graph = LoadGraphFromFile(path);
  if (!graph.ok()) return Fail(graph.status().ToString());
  graph->Seal();
  analysis::DiagnosticSink sink;
  analysis::ValidateGraph(*graph, &sink);
  int rc = ReportDiagnostics(&sink, path, /*json=*/false);
  if (rc == 0) {
    std::printf("graph OK: %zu alive node(s), %zu edge(s), %zu invocation(s)\n",
                graph->num_alive(), graph->num_edges(),
                graph->num_live_invocations());
  }
  return rc;
}

int CmdValidate(const std::string& path) {
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    return Fail(StrCat(path, " is a directory, not a workflow or graph file"));
  }
  if (EndsWith(path, ".pg")) return CmdValidateGraph(path);
  Result<Workflow> wf = ParseWorkflowFile(path);
  if (!wf.ok()) return Fail(wf.status().ToString());
  pig::UdfRegistry udfs;
  Status st = wf->Validate(&udfs);
  if (!st.ok()) return Fail(st.ToString());
  Result<std::vector<std::string>> topo = wf->TopologicalOrder();
  std::printf("workflow OK: %zu nodes, %zu edges\n", wf->nodes().size(),
              wf->edges().size());
  std::printf("inputs:  %s\n", Join(wf->InputNodes(), ", ").c_str());
  std::printf("outputs: %s\n", Join(wf->OutputNodes(), ", ").c_str());
  std::printf("order:   %s\n", Join(*topo, " -> ").c_str());
  return 0;
}

int CmdRun(const std::vector<std::string>& args) {
  if (args.empty()) return FailUsage();
  const std::string& wf_path = args[0];
  int execs = 1;
  int workers = 1;
  bool print_outputs = false;
  std::string graph_path;
  std::string trace_path;    // --trace: Chrome trace_event JSON
  std::string metrics_path;  // --metrics: metrics registry JSON
  std::string wal_dir;       // --wal: crash-safe provenance log directory
  FsyncPolicy wal_fsync = FsyncPolicy::kOnSavepoint;
  std::vector<Binding> inputs, states;
  for (size_t i = 1; i < args.size(); ++i) {
    auto need_value = [&](const char* flag) -> Result<std::string> {
      if (i + 1 >= args.size()) {
        return Status::InvalidArgument(StrCat(flag, " needs a value"));
      }
      return args[++i];
    };
    if (args[i] == "--execs") {
      auto v = need_value("--execs");
      if (!v.ok()) return Fail(v.status().ToString());
      execs = std::atoi(v->c_str());
    } else if (args[i] == "--workers") {
      auto v = need_value("--workers");
      if (!v.ok()) return Fail(v.status().ToString());
      workers = std::atoi(v->c_str());
    } else if (args[i] == "--graph") {
      auto v = need_value("--graph");
      if (!v.ok()) return Fail(v.status().ToString());
      graph_path = *v;
    } else if (args[i] == "--trace") {
      auto v = need_value("--trace");
      if (!v.ok()) return Fail(v.status().ToString());
      trace_path = *v;
    } else if (args[i] == "--metrics") {
      auto v = need_value("--metrics");
      if (!v.ok()) return Fail(v.status().ToString());
      metrics_path = *v;
    } else if (args[i] == "--wal") {
      auto v = need_value("--wal");
      if (!v.ok()) return Fail(v.status().ToString());
      wal_dir = *v;
    } else if (args[i] == "--wal-fsync") {
      auto v = need_value("--wal-fsync");
      if (!v.ok()) return Fail(v.status().ToString());
      if (*v == "never") {
        wal_fsync = FsyncPolicy::kNever;
      } else if (*v == "commit") {
        wal_fsync = FsyncPolicy::kOnCommit;
      } else if (*v == "savepoint") {
        wal_fsync = FsyncPolicy::kOnSavepoint;
      } else {
        return Fail(StrCat("--wal-fsync: unknown policy '", *v,
                           "' (expected never|commit|savepoint)"));
      }
    } else if (args[i] == "--input" || args[i] == "--state") {
      bool is_input = args[i] == "--input";
      auto v = need_value(is_input ? "--input" : "--state");
      if (!v.ok()) return Fail(v.status().ToString());
      Result<Binding> binding = ParseBinding(*v);
      if (!binding.ok()) return Fail(binding.status().ToString());
      (is_input ? inputs : states).push_back(std::move(*binding));
    } else if (args[i] == "--print-outputs") {
      print_outputs = true;
    } else {
      return Fail(StrCat("unknown flag '", args[i], "'"));
    }
  }

  std::error_code ec;
  if (std::filesystem::is_directory(wf_path, ec)) {
    return Fail(StrCat(wf_path, " is a directory, not a workflow file"));
  }
  Result<Workflow> wf = ParseWorkflowFile(wf_path);
  if (!wf.ok()) return Fail(wf.status().ToString());
  pig::UdfRegistry udfs;
  WorkflowExecutor executor(&*wf, &udfs);
  Status st = executor.Initialize();
  if (!st.ok()) return Fail(st.ToString());

  // Initial state from CSV files.
  for (const Binding& b : states) {
    // Find the schema through any node bound to this instance.
    const ModuleSpec* spec = nullptr;
    for (const WorkflowNode& node : wf->nodes()) {
      if (node.instance == b.owner) {
        auto found = wf->FindModule(node.module);
        if (found.ok()) spec = *found;
      }
    }
    if (spec == nullptr) {
      return Fail(StrCat("--state: unknown instance '", b.owner, "'"));
    }
    auto schema_it = spec->state_schemas.find(b.relation);
    if (schema_it == spec->state_schemas.end()) {
      return Fail(StrCat("--state: module ", spec->name,
                         " has no state relation '", b.relation, "'"));
    }
    Result<Bag> bag = ReadCsvFile(b.path, *schema_it->second);
    if (!bag.ok()) return Fail(bag.status().ToString());
    st = executor.SetInitialState(b.owner, b.relation, std::move(*bag));
    if (!st.ok()) return Fail(st.ToString());
  }

  // Inputs (replayed identically on every execution).
  WorkflowInputs workflow_inputs;
  for (const Binding& b : inputs) {
    Result<const WorkflowNode*> node = wf->FindNode(b.owner);
    if (!node.ok()) return Fail(node.status().ToString());
    Result<const ModuleSpec*> spec = wf->FindModule((*node)->module);
    if (!spec.ok()) return Fail(spec.status().ToString());
    auto schema_it = (*spec)->input_schemas.find(b.relation);
    if (schema_it == (*spec)->input_schemas.end()) {
      return Fail(StrCat("--input: module ", (*spec)->name,
                         " has no input relation '", b.relation, "'"));
    }
    Result<Bag> bag = ReadCsvFile(b.path, *schema_it->second);
    if (!bag.ok()) return Fail(bag.status().ToString());
    workflow_inputs[b.owner][b.relation] = std::move(*bag);
  }

  // Observability: arm the tracer / metrics registry around the execution
  // loop when requested; both stay disarmed (no overhead) otherwise.
  if (!trace_path.empty()) obs::Tracer::Global().Start();
  if (!metrics_path.empty()) obs::MetricsRegistry::Global().Enable();

  ProvenanceGraph graph;
  // --wal implies provenance tracking: the log records graph mutations.
  ProvenanceGraph* graph_ptr =
      (graph_path.empty() && wal_dir.empty()) ? nullptr : &graph;
  std::unique_ptr<Wal> wal;
  if (!wal_dir.empty()) {
    WalOptions wal_options;
    wal_options.fsync = wal_fsync;
    Result<std::unique_ptr<Wal>> opened = Wal::Open(wal_dir, wal_options);
    if (!opened.ok()) return Fail(opened.status().ToString());
    wal = std::move(*opened);
    st = wal->Attach(&graph, executor.executions_run());
    if (!st.ok()) return Fail(st.ToString());
    ExecutionOptions options = executor.default_options();
    options.durability = wal.get();
    executor.set_default_options(options);
  }
  WorkflowOutputs last_outputs;
  for (int e = 0; e < execs; ++e) {
    Result<WorkflowOutputs> outputs =
        executor.Execute(workflow_inputs, graph_ptr, workers);
    if (!outputs.ok()) return Fail(outputs.status().ToString());
    last_outputs = std::move(*outputs);
  }
  if (wal != nullptr) {
    Status wal_status = wal->status();
    st = wal->Close();
    if (!st.ok()) return Fail(st.ToString());
    if (!wal_status.ok()) return Fail(wal_status.ToString());
    std::printf("wal: %llu record(s), %llu byte(s) -> %s\n",
                static_cast<unsigned long long>(wal->records_appended()),
                static_cast<unsigned long long>(wal->bytes_appended()),
                wal_dir.c_str());
  }
  std::printf("ran %d execution(s) of %zu node(s)\n", execs,
              wf->nodes().size());

  if (print_outputs) {
    for (const std::string& node_id : wf->OutputNodes()) {
      auto it = last_outputs.find(node_id);
      if (it == last_outputs.end()) continue;
      for (const auto& [rel_name, rel] : it->second) {
        std::printf("%s.%s = %s\n", node_id.c_str(), rel_name.c_str(),
                    rel.bag.ToString().c_str());
      }
    }
  }
  if (graph_ptr != nullptr) {
    graph.Seal();
    st = SaveGraphToFile(graph, graph_path);
    if (!st.ok()) return Fail(st.ToString());
    std::printf("provenance graph: %zu nodes -> %s\n", graph.num_nodes(),
                graph_path.c_str());
  }

  // Export after the graph save so Seal() spans/metrics are captured.
  if (!trace_path.empty()) {
    obs::Tracer& tracer = obs::Tracer::Global();
    tracer.Stop();
    st = tracer.WriteJsonToFile(trace_path);
    if (!st.ok()) return Fail(st.ToString());
    std::printf("trace: %zu event(s) -> %s (load in about:tracing or "
                "ui.perfetto.dev)\n",
                tracer.num_events(), trace_path.c_str());
  }
  if (!metrics_path.empty()) {
    obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
    metrics.Disable();
    std::string json = metrics.RenderJson();
    std::FILE* f = std::fopen(metrics_path.c_str(), "wb");
    if (f == nullptr || std::fwrite(json.data(), 1, json.size(), f) !=
                            json.size()) {
      if (f != nullptr) std::fclose(f);
      return Fail(StrCat("cannot write metrics to '", metrics_path, "'"));
    }
    std::fclose(f);
    std::printf("metrics: %s\n", metrics_path.c_str());
  }
  return 0;
}

int CmdRecover(const std::vector<std::string>& args) {
  if (args.empty()) return FailUsage();
  const std::string& wal_dir = args[0];
  std::string out_path;
  RecoveryOptions options;
  for (size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--out") {
      if (i + 1 >= args.size()) return Fail("--out needs a value");
      out_path = args[++i];
    } else if (args[i] == "--keep-uncommitted") {
      options.keep_uncommitted = true;
    } else if (args[i] == "--repair") {
      options.repair = true;
    } else {
      return Fail(StrCat("unknown recover flag '", args[i], "'"));
    }
  }
  RecoveryReport report;
  Result<ProvenanceGraph> graph = RecoverGraph(wal_dir, &report, options);
  if (!graph.ok()) return Fail(graph.status().ToString());
  std::fputs(report.ToString().c_str(), stdout);
  graph->Seal();
  analysis::DiagnosticSink sink;
  analysis::ValidateGraph(*graph, &sink);
  if (sink.CountAtLeast(analysis::Severity::kWarning) > 0) {
    sink.Sort();
    std::fputs(sink.RenderText(wal_dir).c_str(), stdout);
    return Fail("recovered graph failed validation");
  }
  std::printf("recovered graph OK: %zu alive node(s), %zu invocation(s)\n",
              graph->num_alive(), graph->num_live_invocations());
  if (!out_path.empty()) {
    Status st = SaveGraphToFile(*graph, out_path);
    if (!st.ok()) return Fail(st.ToString());
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}

/// Query subcommands, recognized before the graph file is touched so an
/// unknown op fails fast with a one-line diagnostic (mirroring `recover`).
bool KnownQueryOp(const std::string& op) {
  static const std::set<std::string> kOps = {
      "stats",   "find",     "expr", "depends", "subgraph", "delete",
      "zoomout", "restrict", "dot",  "opm",     "validate", "explain"};
  return kOps.count(op) > 0;
}

/// True when any token carries a `|`: the whole command line is one
/// pipeline plan and travels as a single op string.
bool HasPipe(const std::vector<std::string>& tokens) {
  for (const std::string& t : tokens) {
    if (t.find('|') != std::string::npos) return true;
  }
  return false;
}

std::string JoinTokens(const std::vector<std::string>& tokens) {
  std::string out;
  for (const std::string& t : tokens) {
    if (!out.empty()) out += ' ';
    out += t;
  }
  return out;
}

/// One batch-file query plus where it came from: per-line errors cite the
/// 1-based line number in the original file, not the post-skip index.
struct BatchLine {
  size_t line_no = 0;
  std::string text;
};

/// Loads a batch file: one query per line, blank lines and # comments
/// skipped. Shared by the local and remote batch drivers.
Result<std::vector<BatchLine>> ReadBatchLines(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError(StrCat("cannot read batch file '", path, "'"));
  }
  std::vector<BatchLine> lines;
  std::string line;
  for (size_t line_no = 1; std::getline(in, line); ++line_no) {
    size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    lines.push_back(BatchLine{line_no, line.substr(first)});
  }
  return lines;
}

/// Prints batch results in input order under "## <query>" headers. Failed
/// lines render through the protocol error envelope ("error: <code>:
/// <message>" — identical whether the query ran locally or server-side)
/// plus the 1-based source line number, and make the exit code nonzero;
/// all lines still run and report.
int ReportBatch(const std::vector<BatchLine>& lines,
                const std::vector<std::string>& outputs,
                const std::vector<Status>& errors) {
  size_t failures = 0;
  for (size_t i = 0; i < lines.size(); ++i) {
    std::printf("## %s\n", lines[i].text.c_str());
    if (errors[i].ok()) {
      std::fputs(outputs[i].c_str(), stdout);
    } else {
      std::printf("%s (line %zu)\n", service::ErrorLine(errors[i]).c_str(),
                  lines[i].line_no);
      ++failures;
    }
  }
  if (failures > 0) {
    return Fail(StrCat(failures, " of ", lines.size(),
                       " batch queries failed"));
  }
  std::printf("(%zu batch queries OK)\n", lines.size());
  return 0;
}

/// The local `--batch` driver: one read-only query per line, run
/// concurrently over a single shared snapshot on `threads` workers.
int RunBatch(const GraphSnapshot& snap, const std::string& batch_path,
             int threads) {
  Result<std::vector<BatchLine>> lines = ReadBatchLines(batch_path);
  if (!lines.ok()) return Fail(lines.status().ToString());
  std::vector<std::string> outputs(lines->size());
  std::vector<Status> errors(lines->size());
  // Parallelism comes from running whole lines concurrently, so each line
  // executes its query single-threaded. The whole line travels as the op
  // string — the plan parser splits it, so pipelines need no special case.
  ParallelFor(lines->size(), threads, [&](size_t begin, size_t end, int) {
    for (size_t i = begin; i < end; ++i) {
      Result<std::string> text =
          service::ExecuteReadQuery(snap, (*lines)[i].text, {}, /*threads=*/1);
      if (text.ok()) {
        outputs[i] = std::move(*text);
      } else {
        errors[i] = text.status();
      }
    }
  });
  return ReportBatch(*lines, outputs, errors);
}

/// The remote `--batch` driver: same file format, same report, but each
/// line is a round-trip to the daemon over one connection.
int RunRemoteBatch(service::ServiceClient* client,
                   const std::string& batch_path, const std::string& graph,
                   double deadline_ms) {
  Result<std::vector<BatchLine>> lines = ReadBatchLines(batch_path);
  if (!lines.ok()) return Fail(lines.status().ToString());
  std::vector<std::string> outputs(lines->size());
  std::vector<Status> errors(lines->size());
  for (size_t i = 0; i < lines->size(); ++i) {
    // Pipelines travel whole in the op field; plain lines tokenize so the
    // server's exact-name admin dispatch (ping, reload, ...) still works.
    std::string op = (*lines)[i].text;
    std::vector<std::string> qargs;
    if (op.find('|') == std::string::npos) {
      std::istringstream ts(op);
      std::vector<std::string> tokens;
      std::string tok;
      while (ts >> tok) tokens.push_back(tok);
      op = tokens[0];
      qargs.assign(tokens.begin() + 1, tokens.end());
    }
    Result<std::string> text = client->Query(op, qargs, graph, deadline_ms);
    if (text.ok()) {
      outputs[i] = std::move(*text);
    } else {
      errors[i] = text.status();
    }
  }
  return ReportBatch(*lines, outputs, errors);
}

/// Remote mode: `query --connect host:port <op> ...`. The server renders
/// the text, the client prints it verbatim — byte-identical to local mode.
int CmdQueryRemote(const std::string& endpoint,
                   const std::vector<std::string>& rest,
                   const std::string& graph, double deadline_ms,
                   const std::string& batch_path) {
  Result<service::ServiceClient> client =
      service::ServiceClient::Connect(endpoint);
  if (!client.ok()) return Fail(client.status().ToString());
  if (!batch_path.empty()) {
    return RunRemoteBatch(&*client, batch_path, graph, deadline_ms);
  }
  if (rest.empty()) return FailUsage();
  std::string op = rest[0];
  std::vector<std::string> qargs(rest.begin() + 1, rest.end());
  if (HasPipe(rest)) {
    // Whole pipeline in the op field, same as local mode.
    op = JoinTokens(rest);
    qargs.clear();
  }
  Result<std::string> text = client->Query(op, qargs, graph, deadline_ms);
  if (!text.ok()) {
    std::fprintf(stderr, "lipstick: %s\n",
                 service::ErrorLine(text.status()).c_str());
    return 1;
  }
  std::fputs(text->c_str(), stdout);
  return 0;
}

int CmdQuery(const std::vector<std::string>& args) {
  if (args.empty()) return FailUsage();
  std::vector<std::string> rest = args;

  // Global flags, accepted anywhere.
  int threads = 1;
  std::string out_path;
  std::string batch_path;
  std::string connect;     // --connect host:port = remote mode
  std::string graph_name;  // --graph: server-side graph selector
  double deadline_ms = 0;  // --deadline-ms: server-side query deadline
  for (size_t i = 0; i < rest.size();) {
    if (rest[i] == "--threads") {
      if (i + 1 >= rest.size()) return Fail("--threads needs a value");
      char* end = nullptr;
      long v = std::strtol(rest[i + 1].c_str(), &end, 10);
      if (end == rest[i + 1].c_str() || *end != '\0' || v < 1 || v > 256) {
        return Fail(StrCat("--threads: bad thread count '", rest[i + 1], "'"));
      }
      threads = static_cast<int>(v);
      rest.erase(rest.begin() + i, rest.begin() + i + 2);
    } else if (rest[i] == "--batch") {
      if (i + 1 >= rest.size()) return Fail("--batch needs a file");
      batch_path = rest[i + 1];
      rest.erase(rest.begin() + i, rest.begin() + i + 2);
    } else if (rest[i] == "--out") {
      if (i + 1 >= rest.size()) return Fail("--out needs a value");
      out_path = rest[i + 1];
      rest.erase(rest.begin() + i, rest.begin() + i + 2);
    } else if (rest[i] == "--connect") {
      if (i + 1 >= rest.size()) return Fail("--connect needs host:port");
      connect = rest[i + 1];
      rest.erase(rest.begin() + i, rest.begin() + i + 2);
    } else if (rest[i] == "--graph") {
      if (i + 1 >= rest.size()) return Fail("--graph needs a name");
      graph_name = rest[i + 1];
      rest.erase(rest.begin() + i, rest.begin() + i + 2);
    } else if (rest[i] == "--deadline-ms") {
      if (i + 1 >= rest.size()) return Fail("--deadline-ms needs a value");
      deadline_ms = std::atof(rest[i + 1].c_str());
      rest.erase(rest.begin() + i, rest.begin() + i + 2);
    } else {
      ++i;
    }
  }

  if (!connect.empty()) {
    if (!out_path.empty()) {
      return Fail("--out is not supported with --connect");
    }
    return CmdQueryRemote(connect, rest, graph_name, deadline_ms, batch_path);
  }

  if (rest.empty()) return FailUsage();
  const std::string path = rest[0];
  rest.erase(rest.begin());

  // Reject unknown subcommands and unreadable paths before the loader
  // runs: one-line diagnostics, nonzero exit, no partial output.
  std::string op;
  bool pipeline = false;
  if (batch_path.empty()) {
    if (rest.empty()) return FailUsage();
    op = rest[0];
    rest.erase(rest.begin());
    // A `|` anywhere (quoted as one shell word or split across several)
    // folds the whole command line into one pipeline op; its stages are
    // validated by the plan parser after the graph loads.
    pipeline = op.find('|') != std::string::npos || HasPipe(rest);
    if (pipeline) {
      if (!rest.empty()) op = StrCat(op, " ", JoinTokens(rest));
      rest.clear();
    } else if (!KnownQueryOp(op)) {
      return Fail(StrCat("unknown query operation '", op, "'"));
    }
  }
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec)) {
    return Fail(StrCat("cannot read graph file '", path, "'"));
  }

  Result<ProvenanceGraph> graph = LoadGraphFromFile(path);
  if (!graph.ok()) return Fail(graph.status().ToString());
  graph->Seal();

  // `delete` mutates the graph, so it runs before the snapshot capture.
  if (op == "delete") {
    if (rest.size() != 1) return FailUsage();
    Result<NodeId> id = service::ParseNodeId(rest[0]);
    if (!id.ok()) return Fail(id.status().ToString());
    size_t removed = *PropagateDeletion(&*graph, *id);
    std::printf("deleted %zu node(s); %zu remain\n", removed,
                graph->num_alive());
    if (!out_path.empty()) {
      Status st = SaveGraphToFile(*graph, out_path);
      if (!st.ok()) return Fail(st.ToString());
      std::printf("wrote %s\n", out_path.c_str());
    }
    return 0;
  }

  // Everything else reads through one immutable snapshot.
  Result<GraphSnapshot> snap = GraphSnapshot::Capture(*graph);
  if (!snap.ok()) return Fail(snap.status().ToString());

  if (!batch_path.empty()) {
    return RunBatch(*snap, batch_path, threads);
  }

  if (op == "stats" || op == "find" || op == "expr" || op == "depends" ||
      op == "restrict" || op == "explain" ||
      (op == "subgraph" && out_path.empty()) ||
      (op == "zoomout" && out_path.empty()) ||
      (pipeline && out_path.empty())) {
    Result<std::string> text =
        service::ExecuteReadQuery(*snap, op, rest, threads);
    if (!text.ok()) return Fail(text.status().ToString());
    std::fputs(text->c_str(), stdout);
    return 0;
  }
  if (pipeline) {
    // Pipeline with --out: build the composed view once, then save it —
    // .pg materializes a standalone graph, anything else renders dot.
    Result<Plan> plan = ParsePlan(op, rest);
    if (!plan.ok()) return Fail(plan.status().ToString());
    OptimizedPlan optimized = OptimizePlan(*plan);
    if (!optimized.plan.ops.back().IsViewOp()) {
      // A terminal stage leaves no graph to save; run it and ignore
      // --out, the way `stats --out` always has.
      Result<std::string> text =
          service::ExecuteReadQuery(*snap, op, rest, threads);
      if (!text.ok()) return Fail(text.status().ToString());
      std::fputs(text->c_str(), stdout);
      return 0;
    }
    Result<GraphView> view = BuildPlanView(*snap, optimized.plan, threads);
    if (!view.ok()) return Fail(view.status().ToString());
    std::printf("pipeline view: %zu nodes\n", view->num_visible());
    if (EndsWith(out_path, ".pg")) {
      Result<ProvenanceGraph> mat = view->Materialize();
      if (!mat.ok()) return Fail(mat.status().ToString());
      Status st = SaveGraphToFile(*mat, out_path);
      if (!st.ok()) return Fail(st.ToString());
    } else {
      Status st = WriteDotToFile(*view, out_path);
      if (!st.ok()) return Fail(st.ToString());
    }
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
  }
  if (op == "subgraph") {
    // --out given: build the lazy view once and render it directly —
    // byte-identical to materializing and rendering the restricted graph.
    if (rest.size() != 1) return FailUsage();
    Result<NodeId> id = service::ParseNodeId(rest[0]);
    if (!id.ok()) return Fail(id.status().ToString());
    Result<GraphView> view = SubgraphView(*snap, *id, threads);
    if (!view.ok()) return Fail(view.status().ToString());
    std::printf("subgraph of %llu: %zu nodes\n",
                static_cast<unsigned long long>(*id), view->num_visible());
    Status st = WriteDotToFile(*view, out_path);
    if (!st.ok()) return Fail(st.ToString());
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
  }
  if (op == "zoomout") {
    if (rest.empty()) return FailUsage();
    // Lazy: plan the collapse as a view; the standalone zoomed graph is
    // materialized only when --out asks for it.
    Result<GraphView> view =
        ZoomOutView(*snap, {rest.begin(), rest.end()}, threads);
    if (!view.ok()) return Fail(view.status().ToString());
    std::printf("zoomed out of %zu module(s); %zu nodes remain\n",
                rest.size(), view->num_visible());
    if (!out_path.empty()) {
      Result<ProvenanceGraph> zoomed = view->Materialize();
      if (!zoomed.ok()) return Fail(zoomed.status().ToString());
      Status st = SaveGraphToFile(*zoomed, out_path);
      if (!st.ok()) return Fail(st.ToString());
      std::printf("wrote %s\n", out_path.c_str());
    }
    return 0;
  }
  if (op == "opm") {
    if (out_path.empty()) return Fail("opm requires --out <file>");
    std::ofstream xml(out_path);
    if (!xml.is_open()) {
      return Fail(StrCat("cannot open ", out_path, " for writing"));
    }
    Status st = WriteOpmXml(*snap, xml);
    if (!st.ok()) return Fail(st.ToString());
    std::printf("wrote %s (coarse-grained OPM view)\n", out_path.c_str());
    return 0;
  }
  if (op == "validate") {
    analysis::DiagnosticSink sink;
    analysis::ValidateGraph(*snap, &sink);
    return ReportDiagnostics(&sink, args[0], /*json=*/false);
  }
  // op == "dot" (KnownQueryOp already filtered everything else).
  if (out_path.empty()) return Fail("dot requires --out <file>");
  std::ofstream dot(out_path);
  if (!dot.is_open()) {
    return Fail(StrCat("cannot open ", out_path, " for writing"));
  }
  Status st = WriteDot(*snap, dot);
  if (!st.ok()) return Fail(st.ToString());
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

/// `lipstick explain <graph.pg> <query...> [--json]`: parse + optimize the
/// query and print the plan with the cost model's predictions, without
/// executing it. Sugar for `query <graph.pg> explain ...`.
int CmdExplain(const std::vector<std::string>& args) {
  if (args.size() < 2) return FailUsage();
  const std::string path = args[0];
  std::vector<std::string> rest(args.begin() + 1, args.end());
  // `--json` rides as an arg token; the query itself folds into the op
  // string so quoted pipelines re-tokenize in the plan parser.
  std::vector<std::string> qargs;
  if (!rest.empty() && rest.back() == "--json") {
    qargs.push_back("--json");
    rest.pop_back();
  }
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec)) {
    return Fail(StrCat("cannot read graph file '", path, "'"));
  }
  Result<ProvenanceGraph> graph = LoadGraphFromFile(path);
  if (!graph.ok()) return Fail(graph.status().ToString());
  graph->Seal();
  Result<GraphSnapshot> snap = GraphSnapshot::Capture(*graph);
  if (!snap.ok()) return Fail(snap.status().ToString());
  Result<std::string> text = service::ExecuteReadQuery(
      *snap, StrCat("explain ", JoinTokens(rest)), qargs, /*threads=*/1);
  if (!text.ok()) return Fail(text.status().ToString());
  std::fputs(text->c_str(), stdout);
  return 0;
}

// ---------------------------------------------------------------------
// serve: the long-lived multi-client provenance query daemon.
// ---------------------------------------------------------------------

/// Self-pipe for async-signal-safe shutdown: the handler only write()s a
/// byte; the main thread blocks on the read end and runs the drain.
int g_signal_pipe[2] = {-1, -1};

extern "C" void HandleStopSignal(int /*signum*/) {
  char byte = 0;
  // Best-effort: a full pipe means a stop is already pending.
  [[maybe_unused]] ssize_t n = write(g_signal_pipe[1], &byte, 1);
}

int CmdServe(const std::vector<std::string>& args) {
  if (args.empty()) return FailUsage();
  service::ServerOptions options;
  std::vector<std::pair<std::string, std::string>> specs;  // name, path
  for (size_t i = 0; i < args.size(); ++i) {
    auto need_value = [&](const char* flag) -> Result<std::string> {
      if (i + 1 >= args.size()) {
        return Status::InvalidArgument(StrCat(flag, " needs a value"));
      }
      return args[++i];
    };
    if (args[i] == "--host") {
      auto v = need_value("--host");
      if (!v.ok()) return Fail(v.status().ToString());
      options.host = *v;
    } else if (args[i] == "--port") {
      auto v = need_value("--port");
      if (!v.ok()) return Fail(v.status().ToString());
      options.port = std::atoi(v->c_str());
    } else if (args[i] == "--workers") {
      auto v = need_value("--workers");
      if (!v.ok()) return Fail(v.status().ToString());
      options.workers = std::atoi(v->c_str());
    } else if (args[i] == "--queue-depth") {
      auto v = need_value("--queue-depth");
      if (!v.ok()) return Fail(v.status().ToString());
      options.queue_depth = static_cast<size_t>(std::atoi(v->c_str()));
    } else if (args[i] == "--deadline-ms") {
      auto v = need_value("--deadline-ms");
      if (!v.ok()) return Fail(v.status().ToString());
      options.default_deadline_ms = std::atof(v->c_str());
    } else if (args[i] == "--cache") {
      auto v = need_value("--cache");
      if (!v.ok()) return Fail(v.status().ToString());
      options.cache_entries = static_cast<size_t>(std::atoi(v->c_str()));
    } else if (args[i] == "--query-threads") {
      auto v = need_value("--query-threads");
      if (!v.ok()) return Fail(v.status().ToString());
      options.query_threads = std::atoi(v->c_str());
    } else if (!args[i].empty() && args[i][0] == '-') {
      return Fail(StrCat("unknown serve flag '", args[i], "'"));
    } else {
      // Graph spec: "name=path" or bare "path" (name = file stem).
      size_t eq = args[i].find('=');
      if (eq != std::string::npos) {
        specs.emplace_back(args[i].substr(0, eq), args[i].substr(eq + 1));
      } else {
        specs.emplace_back(
            std::filesystem::path(args[i]).stem().string(), args[i]);
      }
    }
  }
  if (specs.empty()) return Fail("serve needs at least one graph file");

  // The daemon runs with metrics armed: the whole point of `metricz` and
  // the latency histograms is observing a live server.
  obs::MetricsRegistry::Global().Enable();

  service::GraphRegistry registry;
  for (const auto& [name, path] : specs) {
    Status st = registry.LoadFile(name, path);
    if (!st.ok()) return Fail(st.ToString());
    std::printf("serve: loaded graph '%s' from %s\n", name.c_str(),
                path.c_str());
  }

  service::Server server(&registry, options);
  Status st = server.Start();
  if (!st.ok()) return Fail(st.ToString());

  if (pipe(g_signal_pipe) != 0) return Fail("cannot create signal pipe");
  struct sigaction sa = {};
  sa.sa_handler = HandleStopSignal;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  // The integration harness waits for this exact line (and parses the
  // port out of it when --port 0 asked for an ephemeral one).
  std::printf("serve: listening on %s:%d\n", server.host().c_str(),
              server.port());
  std::fflush(stdout);

  char byte;
  while (read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  std::printf("serve: draining...\n");
  std::fflush(stdout);
  server.Shutdown();
  service::Server::StatsSnapshot stats = server.Stats();
  std::printf("serve: drained, exiting (%llu connection(s), %llu "
              "request(s), %llu overloaded)\n",
              static_cast<unsigned long long>(stats.connections),
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.overloaded));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Whole-binary fault injection (LIPSTICK_FAULTS), for exercising the
  // failure paths from the command line; no-op when unset.
  Status faults = FaultInjector::Global().ArmFromEnv();
  if (!faults.ok()) return Fail(faults.ToString());
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return FailUsage();
  const std::string& cmd = args[0];
  std::vector<std::string> rest(args.begin() + 1, args.end());
  if (cmd == "lint") return CmdLint(rest);
  if (cmd == "analyze") return CmdAnalyze(rest);
  if (cmd == "validate" && rest.size() == 1) return CmdValidate(rest[0]);
  if (cmd == "run") return CmdRun(rest);
  if (cmd == "recover") return CmdRecover(rest);
  if (cmd == "query") return CmdQuery(rest);
  if (cmd == "explain") return CmdExplain(rest);
  if (cmd == "serve") return CmdServe(rest);
  return FailUsage();
}

#!/usr/bin/env python3
"""Line-coverage gate over a gcov-instrumented build.

Walks a build tree compiled with --coverage (see LIPSTICK_COVERAGE in the
top-level CMakeLists.txt), runs plain `gcov --json-format` over every
object that produced runtime counters, merges the per-line execution
counts for source files matching a path filter, and enforces a minimum
line-coverage percentage. Deliberately uses only gcc's bundled gcov — no
gcovr/lcov dependency — so the gate runs identically on a bare toolchain
and in CI.

Usage:
  coverage_gate.py <build_dir> --filter src/service/ --min 80 \
      [--out coverage.json]

Exit codes: 0 pass, 1 below threshold (or no data), 2 usage/tooling error.
"""

import argparse
import collections
import glob
import gzip
import json
import os
import subprocess
import sys
import tempfile


def find_gcov():
    """Prefer a gcov matching the compiler used for the build."""
    for cand in (os.environ.get("GCOV"), "gcov"):
        if not cand:
            continue
        try:
            subprocess.run([cand, "--version"], capture_output=True, check=True)
            return cand
        except (OSError, subprocess.CalledProcessError):
            continue
    return None


def run_gcov(gcov, gcda, workdir):
    """Runs gcov in JSON mode on one .gcda; yields parsed report dicts."""
    subprocess.run(
        [gcov, "--json-format", "--object-directory",
         os.path.dirname(gcda), gcda],
        cwd=workdir, capture_output=True, check=False)
    for out in glob.glob(os.path.join(workdir, "*.gcov.json.gz")):
        try:
            with gzip.open(out, "rt", encoding="utf-8") as f:
                yield json.load(f)
        except (OSError, json.JSONDecodeError):
            pass
        finally:
            os.unlink(out)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("build_dir")
    parser.add_argument("--filter", required=True,
                        help="path substring selecting gated sources, "
                             "e.g. src/service/")
    parser.add_argument("--min", type=float, default=80.0,
                        help="minimum line coverage percent (default 80)")
    parser.add_argument("--out", help="write a JSON coverage report here")
    args = parser.parse_args()

    gcov = find_gcov()
    if gcov is None:
        print("coverage_gate: no usable gcov on PATH", file=sys.stderr)
        return 2

    gcdas = glob.glob(os.path.join(args.build_dir, "**", "*.gcda"),
                      recursive=True)
    if not gcdas:
        print(f"coverage_gate: no .gcda files under {args.build_dir} — "
              "build with -DLIPSTICK_COVERAGE=ON and run the tests first",
              file=sys.stderr)
        return 1

    # line counts per source file: covered if ANY test TU executed it.
    counts = collections.defaultdict(lambda: collections.defaultdict(int))
    with tempfile.TemporaryDirectory() as workdir:
        for gcda in gcdas:
            for report in run_gcov(gcov, gcda, workdir):
                for fentry in report.get("files", []):
                    path = os.path.normpath(fentry.get("file", ""))
                    if args.filter not in path:
                        continue
                    for line in fentry.get("lines", []):
                        lineno = line.get("line_number")
                        if lineno is None:
                            continue
                        counts[path][lineno] += int(line.get("count", 0))

    if not counts:
        print(f"coverage_gate: no instrumented lines matched filter "
              f"'{args.filter}'", file=sys.stderr)
        return 1

    files = []
    total_lines = total_covered = 0
    for path in sorted(counts):
        lines = counts[path]
        covered = sum(1 for c in lines.values() if c > 0)
        total_lines += len(lines)
        total_covered += covered
        pct = 100.0 * covered / len(lines) if lines else 0.0
        files.append({"file": path, "lines": len(lines),
                      "covered": covered, "percent": round(pct, 2)})

    total_pct = 100.0 * total_covered / total_lines if total_lines else 0.0
    report = {
        "filter": args.filter,
        "minimum_percent": args.min,
        "percent": round(total_pct, 2),
        "lines": total_lines,
        "covered": total_covered,
        "passed": total_pct >= args.min,
        "files": files,
    }
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2)
            f.write("\n")

    width = max(len(f["file"]) for f in files)
    for f in files:
        print(f"  {f['file']:<{width}}  {f['covered']:>5}/{f['lines']:<5} "
              f"{f['percent']:6.2f}%")
    print(f"coverage_gate: {args.filter} line coverage "
          f"{total_pct:.2f}% ({total_covered}/{total_lines}), "
          f"minimum {args.min:.0f}%")
    if total_pct < args.min:
        print("coverage_gate: FAIL — below minimum", file=sys.stderr)
        return 1
    print("coverage_gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

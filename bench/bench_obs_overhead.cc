// Observability overhead: cost of the always-compiled-in tracing/metrics
// hooks (ObsSpan construction, MetricsRegistry::CounterAdd/Observe) on the
// happy path, disarmed and armed. The observability layer follows the
// fault layer's bar: a run with neither --trace nor --metrics must pay
// well under 2% for carrying the hooks.

#include <algorithm>

#include "bench_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workflowgen/dealership.h"

using namespace lipstick;
using namespace lipstick::bench;
using namespace lipstick::workflowgen;

namespace {

/// Nanoseconds per disarmed ObsSpan construct+destruct.
double SpanNanos(size_t calls) {
  WallTimer timer;
  for (size_t i = 0; i < calls; ++i) {
    obs::ObsSpan span("bench", "bench.span");
    if (span.active()) Check(Status::Internal("tracer unexpectedly armed"));
  }
  return timer.ElapsedSeconds() * 1e9 / calls;
}

/// Nanoseconds per disarmed CounterAdd + Observe pair.
double MetricNanos(size_t calls) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  static const obs::MetricId kCounter = metrics.RegisterCounter("bench.count");
  static const obs::MetricId kHist = metrics.RegisterHistogram("bench.us");
  WallTimer timer;
  for (size_t i = 0; i < calls; ++i) {
    metrics.CounterAdd(kCounter);
    metrics.Observe(kHist, 1.0);
  }
  return timer.ElapsedSeconds() * 1e9 / calls;
}

/// Average seconds per dealership execution with the tracer/registry in
/// their current armed state (ExecuteOnce uses the default serial path —
/// the exact code the CLI runs).
double DealershipSecPerExec(int num_cars, int num_exec) {
  DealershipConfig cfg;
  cfg.num_cars = num_cars;
  cfg.num_executions = num_exec;
  cfg.seed = 12345;
  cfg.accept_probability = 0;
  auto wf = DealershipWorkflow::Create(cfg);
  Check(wf.status());
  WallTimer timer;
  for (int e = 1; e <= num_exec; ++e) {
    Check((*wf)->ExecuteOnce(e, nullptr).status());
  }
  return timer.ElapsedSeconds() / num_exec;
}

double Pct(double base, double v) { return 100.0 * (v - base) / base; }

}  // namespace

int main() {
  Banner("Observability overhead",
         "disarmed hook cost and armed tracing/metrics cost",
         "sec per dealership execution; hooks at execute / node / "
         "statement / seal / query boundaries");

  // 1. Micro: the disarmed hooks themselves.
  constexpr size_t kCalls = 4u << 20;
  double span_ns = SpanNanos(kCalls);
  double metric_ns = MetricNanos(kCalls);
  std::printf("%-36s %8.2f ns\n", "disarmed ObsSpan ctor+dtor", span_ns);
  std::printf("%-36s %8.2f ns\n", "disarmed CounterAdd+Observe", metric_ns);

  // 2. End-to-end: the dealership workflow, repeated to take the min (the
  // run least disturbed by scheduler noise).
  int num_cars = Scaled(20000, 400);
  int num_exec = Scaled(20, 4);
  constexpr int kReps = 3;
  double disarmed = 1e30, metrics_on = 1e30, both_on = 1e30;
  for (int r = 0; r < kReps; ++r) {
    disarmed = std::min(disarmed, DealershipSecPerExec(num_cars, num_exec));

    obs::MetricsRegistry::Global().Enable();
    metrics_on = std::min(metrics_on,
                          DealershipSecPerExec(num_cars, num_exec));
    obs::MetricsRegistry::Global().Disable();
    obs::MetricsRegistry::Global().ResetValues();

    obs::Tracer::Global().Start();
    obs::MetricsRegistry::Global().Enable();
    both_on = std::min(both_on, DealershipSecPerExec(num_cars, num_exec));
    obs::Tracer::Global().Stop();
    obs::MetricsRegistry::Global().Disable();
    obs::MetricsRegistry::Global().ResetValues();
  }
  std::printf("%-36s %8.4f sec/exec\n", "dealerships, disarmed", disarmed);
  std::printf("%-36s %8.4f sec/exec  (%+.2f%%)\n",
              "dealerships, metrics armed", metrics_on,
              Pct(disarmed, metrics_on));
  std::printf("%-36s %8.4f sec/exec  (%+.2f%%)\n",
              "dealerships, trace + metrics armed", both_on,
              Pct(disarmed, both_on));

  // 3. The timer-noise-free bound: count the hook crossings of one
  // execution with metrics armed (every hook site ticks a counter), then
  // charge each crossing the measured disarmed span + metric cost.
  obs::MetricsRegistry::Global().Enable();
  DealershipSecPerExec(num_cars, num_exec);
  obs::MetricsRegistry::Global().Disable();
  uint64_t hooks = 0;
  for (const auto& [name, value] :
       obs::MetricsRegistry::Global().Snap().counters) {
    if (name == "pig.statements" || name == "executor.nodes_run" ||
        name == "executor.executions") {
      hooks += value;
    }
  }
  obs::MetricsRegistry::Global().ResetValues();
  hooks /= num_exec;
  double computed_pct =
      hooks * (span_ns + metric_ns) * 1e-9 / disarmed * 100.0;
  std::printf("%-36s %8llu hooks/exec -> %.4f%% of exec time\n\n",
              "computed disarmed-hook bound",
              static_cast<unsigned long long>(hooks), computed_pct);

  std::printf(
      "expected: the disarmed hooks are one relaxed atomic load each (a\n"
      "few ns); the computed per-execution bound stays well under 2%%.\n"
      "Armed costs are the opt-in price of --trace/--metrics and scale\n"
      "with hook crossings, not data volume.\n");

  ResultsJson results("bench_obs_overhead");
  results.Add("disarmed_span_ns", span_ns);
  results.Add("disarmed_metric_ns", metric_ns);
  results.Add("disarmed_sec_per_exec", disarmed);
  results.Add("computed_overhead_pct", computed_pct);
  results.Add("armed_overhead_pct", Pct(disarmed, both_on));
  results.Emit();
  return 0;
}

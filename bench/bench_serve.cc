// Serve-mode query throughput: boots an in-process `lipstick serve`
// daemon over a dealership provenance graph and drives it from N
// concurrent TCP clients issuing a mixed read workload (stats / find /
// expr / depends / subgraph / zoomout). Reports client-observed latency
// percentiles, aggregate QPS, and the view-cache hit rate — the serve-
// mode counterpart of the paper's batch query numbers (Figure 7): one
// daemon amortizes graph load + snapshot across every query, which is
// exactly the deployment the paper's "Query Processor" assumes.
//
// Flags: --clients N (default 4), --seconds S (default 3, scaled by
// LIPSTICK_BENCH_SCALE), --port P (default ephemeral). The CI soak job
// runs this under TSan and with LIPSTICK_FAULTS armed on the socket
// paths; the harness only requires that faulted requests fail cleanly.

#include <algorithm>
#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/fault.h"
#include "common/str_util.h"
#include "service/client.h"
#include "service/registry.h"
#include "service/server.h"
#include "workflowgen/dealership.h"

using namespace lipstick;
using namespace lipstick::bench;
using namespace lipstick::workflowgen;

namespace {

struct ClientStats {
  std::vector<double> latencies_us;
  uint64_t ok = 0;
  uint64_t failed = 0;
};

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t idx = static_cast<size_t>(p * (sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

int main(int argc, char** argv) {
  int clients = 4;
  double seconds = 3.0 * Scale();
  int port = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      clients = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      seconds = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: bench_serve [--clients N] [--seconds S] "
                           "[--port P]\n");
      return 2;
    }
  }
  if (seconds < 0.2) seconds = 0.2;

  Banner("Serve", "multi-client query service throughput",
         "p50/p99 latency + QPS over TCP; mixed read workload; "
         "numCars=2000");
  Check(FaultInjector::Global().ArmFromEnv());

  // Build the graph the daemon serves.
  DealershipConfig cfg;
  cfg.num_cars = Scaled(2000, 100);
  cfg.num_executions = Scaled(10, 3);
  cfg.seed = 777;
  auto wf = DealershipWorkflow::Create(cfg);
  Check(wf.status());
  ProvenanceGraph graph;
  Check((*wf)->Run(&graph).status());
  graph.Seal();
  std::printf("graph: %zu nodes, %zu edges\n", graph.num_alive(),
              graph.num_edges());

  // Sample node ids for the pointed queries.
  std::vector<NodeId> ids;
  graph.ForEachAliveNode([&ids](NodeId id) {
    if (ids.size() < 64) ids.push_back(id);
  });

  service::GraphRegistry registry;
  Check(registry.AddGraph("dealers", std::move(graph)));
  service::ServerOptions options;
  options.port = port;
  options.workers = std::max(2, clients / 2);
  options.queue_depth = static_cast<size_t>(clients) * 4;
  service::Server server(&registry, options);
  Check(server.Start());
  std::printf("serving on %s:%d; %d client(s) for %.1fs\n\n",
              server.host().c_str(), server.port(), clients, seconds);

  std::atomic<bool> stop{false};
  std::vector<ClientStats> stats(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([c, &server, &stop, &stats, &ids] {
      auto client = service::ServiceClient::ConnectHostPort(
          "127.0.0.1", server.port());
      if (!client.ok()) return;
      ClientStats& mine = stats[c];
      // Mixed workload: cheap point lookups, full scans, and the
      // cacheable traversal-heavy views, spread across clients.
      uint64_t i = static_cast<uint64_t>(c) * 7919;
      while (!stop.load(std::memory_order_relaxed)) {
        std::string op;
        std::vector<std::string> args;
        const NodeId id = ids[i % ids.size()];
        switch (i % 6) {
          case 0: op = "stats"; break;
          case 1: op = "find"; args = {"--label", "token"}; break;
          case 2: op = "expr"; args = {StrCat(id)}; break;
          case 3:
            op = "depends";
            args = {StrCat(id), StrCat(ids[(i + 13) % ids.size()])};
            break;
          case 4: op = "subgraph"; args = {StrCat(id)}; break;
          case 5: op = "zoomout"; args = {"dealer"}; break;
        }
        WallTimer timer;
        Result<std::string> text = client->Query(op, args);
        double us = timer.ElapsedMicros();
        if (text.ok()) {
          ++mine.ok;
          mine.latencies_us.push_back(us);
        } else {
          // Under LIPSTICK_FAULTS the connection may be poisoned by an
          // injected socket error; reconnect and keep going.
          ++mine.failed;
          client = service::ServiceClient::ConnectHostPort("127.0.0.1",
                                                           server.port());
          if (!client.ok()) break;
        }
        ++i;
      }
    });
  }

  WallTimer wall;
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(seconds * 1000)));
  stop.store(true);
  for (std::thread& t : threads) t.join();
  double elapsed = wall.ElapsedSeconds();
  server.Shutdown();

  std::vector<double> all;
  uint64_t ok = 0, failed = 0;
  for (ClientStats& s : stats) {
    all.insert(all.end(), s.latencies_us.begin(), s.latencies_us.end());
    ok += s.ok;
    failed += s.failed;
  }
  std::sort(all.begin(), all.end());
  service::Server::StatsSnapshot server_stats = server.Stats();
  double qps = elapsed > 0 ? static_cast<double>(ok) / elapsed : 0;
  double p50 = Percentile(all, 0.50);
  double p99 = Percentile(all, 0.99);
  uint64_t cache_total = server_stats.cache_hits + server_stats.cache_misses;
  double hit_rate = cache_total > 0
                        ? static_cast<double>(server_stats.cache_hits) /
                              static_cast<double>(cache_total)
                        : 0;

  std::printf("%-12s %-12s %-12s %-12s %s\n", "requests", "failed", "p50_us",
              "p99_us", "qps");
  std::printf("%-12llu %-12llu %-12.1f %-12.1f %.0f\n",
              static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(failed), p50, p99, qps);
  std::printf("cache: %llu hit(s), %llu miss(es), hit rate %.2f\n",
              static_cast<unsigned long long>(server_stats.cache_hits),
              static_cast<unsigned long long>(server_stats.cache_misses),
              hit_rate);
  if (ok == 0) {
    std::fprintf(stderr, "bench error: no request succeeded\n");
    return 1;
  }

  ResultsJson results("bench_serve");
  results.Add("p50_us", p50);
  results.Add("p99_us", p99);
  results.Add("qps", qps);
  results.Add("cache_hit_rate", hit_rate);
  results.Add("requests", static_cast<double>(ok));
  results.Add("failed", static_cast<double>(failed));
  results.Emit();
  return 0;
}

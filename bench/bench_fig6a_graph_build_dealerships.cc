// Figure 6(a): provenance graph building time vs number of graph nodes,
// Car dealerships. The Query Processor reads provenance-annotated output
// from the file system and builds the in-memory graph (Section 5.1); this
// bench measures exactly that load + build + seal cost, for graphs of
// growing size produced by longer execution series.

#include <sstream>

#include "bench_util.h"
#include "provenance/provio.h"
#include "workflowgen/dealership.h"

using namespace lipstick;
using namespace lipstick::bench;
using namespace lipstick::workflowgen;

int main() {
  Banner("Figure 6(a)", "provenance graph building time — Car dealerships",
         "graph build time (read serialized tracker output + build + "
         "children index) vs number of graph nodes");
  int num_cars = Scaled(20000, 400);
  std::printf("%-12s %-12s %-14s %s\n", "numExec", "nodes", "edges",
              "build_sec");
  double last_build = 0;
  size_t last_nodes = 0;
  for (int num_exec : {5, 10, 25, 50, 75, 100}) {
    DealershipConfig cfg;
    cfg.num_cars = num_cars;
    cfg.num_executions = num_exec;
    cfg.seed = 4242;
    cfg.accept_probability = 0;
    auto wf = DealershipWorkflow::Create(cfg);
    Check(wf.status());
    ProvenanceGraph graph;
    for (int e = 1; e <= num_exec; ++e) {
      Check((*wf)->ExecuteOnce(e, &graph).status());
    }
    // Tracker output -> file-system representation.
    std::ostringstream file;
    Check(SaveGraph(graph, file));
    std::string serialized = file.str();

    // Query Processor: read + build + seal (averaged over 3 repetitions).
    constexpr int kReps = 3;
    double total = 0;
    size_t nodes = 0, edges = 0;
    for (int r = 0; r < kReps; ++r) {
      std::istringstream in(serialized);
      WallTimer timer;
      Result<ProvenanceGraph> loaded = LoadGraph(in);
      Check(loaded.status());
      loaded->Seal();
      total += timer.ElapsedSeconds();
      nodes = loaded->num_nodes();
      edges = loaded->num_edges();
    }
    std::printf("%-12d %-12zu %-14zu %.4f\n", num_exec, nodes, edges,
                total / kReps);
    last_build = total / kReps;
    last_nodes = nodes;
  }
  std::printf(
      "\nexpected shape (paper): node count grows ~linearly with numExec;\n"
      "build time is linear in the number of nodes (paper: < 8 sec up to\n"
      "1M nodes on 2011 hardware).\n");

  ResultsJson results("bench_fig6a_graph_build_dealerships");
  results.Add("nodes", static_cast<double>(last_nodes));
  results.Add("build_seconds", last_build);
  results.Emit();
  return 0;
}

// Figure 5(a): Pig Latin workflow execution time, Car dealerships, local
// mode. Average seconds per execution as a function of the number of
// executions per run (prior executions grow the dealership state the bid
// computation reasons over), with and without provenance tracking.

#include "bench_util.h"
#include "provenance/graph.h"
#include "workflowgen/dealership.h"

using namespace lipstick;
using namespace lipstick::bench;
using namespace lipstick::workflowgen;

namespace {

double RunSeries(int num_cars, int num_exec, bool track, size_t* nodes) {
  DealershipConfig cfg;
  cfg.num_cars = num_cars;
  cfg.num_executions = num_exec;
  cfg.seed = 12345;
  cfg.accept_probability = 0;  // never accept: full-length bid series
  auto wf = DealershipWorkflow::Create(cfg);
  Check(wf.status());
  ProvenanceGraph graph;
  WallTimer timer;
  for (int e = 1; e <= num_exec; ++e) {
    Check((*wf)->ExecuteOnce(e, track ? &graph : nullptr).status());
  }
  double elapsed = timer.ElapsedSeconds();
  if (nodes != nullptr) *nodes = graph.num_nodes();
  return elapsed / num_exec;
}

}  // namespace

int main() {
  int num_cars = Scaled(20000, 400);
  Banner("Figure 5(a)", "workflow execution time — Car dealerships",
         "numCars=20000 (5000/dealership); avg sec per execution vs "
         "number of executions per run");
  std::printf("%-10s %-16s %-18s %-10s %s\n", "numExec", "no_provenance",
              "with_provenance", "overhead", "graph_nodes");
  double last_plain = 0, last_tracked = 0;
  for (int num_exec : {2, 5, 10, 20, 40, 60, 80, 100}) {
    double plain = RunSeries(num_cars, num_exec, false, nullptr);
    size_t nodes = 0;
    double tracked = RunSeries(num_cars, num_exec, true, &nodes);
    std::printf("%-10d %-16.4f %-18.4f %-10.2f %zu\n", num_exec, plain,
                tracked, tracked / plain, nodes);
    last_plain = plain;
    last_tracked = tracked;
  }
  std::printf(
      "\nexpected shape (paper): both curves grow with numExec (state\n"
      "grows with prior executions); tracking overhead grows with history\n"
      "(paper: 2.7s->7s at 10 execs, 3.8s->11.9s at 100 execs).\n");

  ResultsJson results("bench_fig5a_tracking_dealerships");
  results.Add("no_prov_seconds", last_plain);
  results.Add("with_prov_seconds", last_tracked);
  results.Add("tracking_overhead_ratio", last_tracked / last_plain);
  results.Emit();
  return 0;
}

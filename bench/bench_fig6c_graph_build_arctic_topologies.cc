// Figure 6(c): provenance graph building time, Arctic stations with 24
// modules, by selectivity, across topologies: serial, parallel, and dense
// with fan-out 2 / 3 / 6 / 12. numExec=100 per run (paper setup).

#include <sstream>

#include "bench_util.h"
#include "provenance/provio.h"
#include "workflowgen/arctic.h"

using namespace lipstick;
using namespace lipstick::bench;
using namespace lipstick::workflowgen;

namespace {

struct Topo {
  const char* name;
  ArcticTopology topology;
  int fan_out;
};

}  // namespace

int main() {
  Banner("Figure 6(c)",
         "provenance graph building time — Arctic stations, 24 modules",
         "build time (sec) by selectivity across topologies; numExec=100");
  const Topo kTopos[] = {
      {"serial", ArcticTopology::kSerial, 0},
      {"parallel", ArcticTopology::kParallel, 0},
      {"dense_fo2", ArcticTopology::kDense, 2},
      {"dense_fo3", ArcticTopology::kDense, 3},
      {"dense_fo6", ArcticTopology::kDense, 6},
      {"dense_fo12", ArcticTopology::kDense, 12},
  };
  int num_exec = Scaled(100, 5);
  std::printf("%-12s %-12s %-12s %-12s %s\n", "selectivity", "topology",
              "nodes", "edges", "build_sec");
  double max_build = 0;
  for (Selectivity sel : {Selectivity::kAll, Selectivity::kSeason,
                          Selectivity::kMonth, Selectivity::kYear}) {
    for (const Topo& topo : kTopos) {
      ArcticConfig cfg;
      cfg.topology = topo.topology;
      cfg.fan_out = topo.fan_out;
      cfg.num_stations = 24;
      cfg.selectivity = sel;
      cfg.history_years = Scaled(40, 2);
      cfg.seed = 2024;
      auto wf = ArcticWorkflow::Create(cfg);
      Check(wf.status());
      ProvenanceGraph graph;
      Check((*wf)->RunSeries(num_exec, &graph).status());

      std::ostringstream file;
      Check(SaveGraph(graph, file));
      std::string serialized = file.str();
      std::istringstream in(serialized);
      WallTimer timer;
      Result<ProvenanceGraph> loaded = LoadGraph(in);
      Check(loaded.status());
      loaded->Seal();
      double build = timer.ElapsedSeconds();
      std::printf("%-12s %-12s %-12zu %-12zu %.4f\n", SelectivityName(sel),
                  topo.name, loaded->num_nodes(), loaded->num_edges(),
                  build);
      if (build > max_build) max_build = build;
    }
  }
  std::printf(
      "\nexpected shape (paper): build time dominated by selectivity\n"
      "(all > season > month > year); topology has a second-order effect\n"
      "through edge count (higher fan-out => more min-temp edges).\n");

  ResultsJson results("bench_fig6c_graph_build_arctic_topologies");
  results.Add("max_build_seconds", max_build);
  results.Emit();
  return 0;
}

// Figure 5(c): impact of parallelism, Car dealerships. The paper varies
// the number of Hadoop reducers (PARALLEL clause) on a 27-node cluster and
// reports the percent improvement over a single reducer.
//
// Substitution (see DESIGN.md): no Hadoop cluster is available here, so we
// measure real per-node task times from an actual execution and replay
// them on a simulated cluster: tasks are scheduled onto N reducers
// respecting workflow dependencies, with a per-task coordination overhead
// that grows with the cluster size (shuffle/startup cost). The real
// thread-pool executor is also exercised to validate correctness of
// parallel provenance tracking.

#include <algorithm>
#include <map>
#include <vector>

#include "bench_util.h"
#include "workflowgen/dealership.h"

using namespace lipstick;
using namespace lipstick::bench;
using namespace lipstick::workflowgen;

namespace {

/// List-schedules the measured node times onto `workers` simulated
/// reducers, respecting DAG dependencies. Returns the makespan.
double SimulateMakespan(const Workflow& workflow,
                        const std::map<std::string, double>& times,
                        int workers) {
  // Per-task coordination overhead: a fixed dispatch cost plus a component
  // growing with cluster size (models Hadoop task startup + shuffle).
  double mean = 0;
  for (const auto& [id, t] : times) mean += t;
  mean /= times.size();
  double overhead = mean * (0.08 + 0.012 * workers);

  std::map<std::string, double> finish;
  std::vector<double> worker_free(workers, 0.0);
  Result<std::vector<std::string>> topo = workflow.TopologicalOrder();
  Check(topo.status());
  for (const std::string& id : *topo) {
    double ready = 0;
    for (const WorkflowEdge* e : workflow.IncomingEdges(id)) {
      ready = std::max(ready, finish[e->from]);
    }
    // Earliest-available worker.
    auto it = std::min_element(worker_free.begin(), worker_free.end());
    double start = std::max(ready, *it);
    double end = start + times.at(id) + overhead;
    *it = end;
    finish[id] = end;
  }
  double makespan = 0;
  for (const auto& [id, t] : finish) makespan = std::max(makespan, t);
  return makespan;
}

}  // namespace

int main() {
  Banner("Figure 5(c)", "impact of parallelism — Car dealerships",
         "percent improvement of N reducers over 1 (simulated cluster "
         "replaying measured per-module task times)");

  int num_cars = Scaled(20000, 400);
  std::map<std::string, double> times[2];  // [0]=no prov, [1]=prov
  const Workflow* workflow = nullptr;
  std::unique_ptr<DealershipWorkflow> keep_alive;
  for (int track = 0; track < 2; ++track) {
    DealershipConfig cfg;
    cfg.num_cars = num_cars;
    cfg.num_executions = 3;
    cfg.seed = 7;
    cfg.accept_probability = 0;
    auto wf = DealershipWorkflow::Create(cfg);
    Check(wf.status());
    ProvenanceGraph graph;
    // Warm once, then measure the second execution's node times.
    Check((*wf)->ExecuteOnce(1, track ? &graph : nullptr).status());
    Check((*wf)->ExecuteOnce(2, track ? &graph : nullptr).status());
    times[track] = (*wf)->executor().last_node_times();
    if (track == 1) {
      workflow = &(*wf)->workflow();
      keep_alive = std::move(*wf);
    }
  }

  std::printf("%-10s %-22s %-22s\n", "reducers", "improv_no_prov(%)",
              "improv_with_prov(%)");
  double base[2] = {SimulateMakespan(*workflow, times[0], 1),
                    SimulateMakespan(*workflow, times[1], 1)};
  for (int workers : {1, 2, 3, 4, 6, 8, 16, 32, 54}) {
    double impr[2];
    for (int track = 0; track < 2; ++track) {
      double m = SimulateMakespan(*workflow, times[track], workers);
      impr[track] = 100.0 * (base[track] - m) / base[track];
    }
    std::printf("%-10d %-22.1f %-22.1f\n", workers, impr[0], impr[1]);
  }

  // Sanity: the real thread-pool executor must produce identical results
  // in parallel mode (provenance appended shard-per-worker, lock-free).
  DealershipConfig cfg;
  cfg.num_cars = Scaled(2000, 200);
  cfg.num_executions = 2;
  cfg.seed = 7;
  cfg.accept_probability = 0;
  cfg.num_workers = 4;
  auto wf = DealershipWorkflow::Create(cfg);
  Check(wf.status());
  ProvenanceGraph graph;
  Check((*wf)->Run(&graph).status());
  std::printf(
      "\nreal 4-worker thread-pool run: OK (%zu provenance nodes across "
      "shards)\n",
      graph.num_nodes());
  std::printf(
      "\nexpected shape (paper): best improvement (~50%%) at 2-4 reducers\n"
      "(the 4 dealer bids are the parallel portion), mild decline beyond\n"
      "as coordination overhead grows; provenance and no-provenance\n"
      "curves are close.\n");

  ResultsJson results("bench_fig5c_parallelism");
  results.Add("makespan_base_no_prov_seconds", base[0]);
  results.Add("makespan_base_with_prov_seconds", base[1]);
  results.Add("parallel_run_nodes", static_cast<double>(graph.num_nodes()));
  results.Emit();
  return 0;
}

// Static-analysis performance: wall time of the dataflow engine on the
// generator workflows (interval-domain fixpoint, the `lipstick analyze`
// default) and of the concrete replay domain as sample-input volume
// grows. The analyzer is meant to be cheap enough to run on every lint
// pass, so the interval fixpoint over a full generator workflow must stay
// in the low milliseconds; concrete replay is allowed to scale with the
// sample (it runs the real interpreter) but must stay linear.

#include <algorithm>

#include "analysis/cost_model.h"
#include "analysis/dataflow.h"
#include "bench_util.h"
#include "workflow/wfdsl.h"
#include "workflowgen/arctic.h"
#include "workflowgen/dealership.h"

using namespace lipstick;
using namespace lipstick::bench;
using namespace lipstick::workflowgen;

namespace {

constexpr int kReps = 5;

/// FILTER / JOIN / GROUP / UNION pipeline whose concrete replay has to
/// chew through the whole sample (join + state accumulation).
const char* kPipelineWf =
    "module src {\n"
    "  input Ext(k: int, v: int);\n"
    "  output Out(k: int, v: int);\n"
    "  qout {\n"
    "    Out = FOREACH Ext GENERATE k, v;\n"
    "  }\n"
    "}\n"
    "module proc {\n"
    "  input In(k: int, v: int);\n"
    "  state Hist(k: int, v: int);\n"
    "  output Count(n: int);\n"
    "  qstate {\n"
    "    Hist = UNION Hist, In;\n"
    "  }\n"
    "  qout {\n"
    "    Big = FILTER In BY v > 2;\n"
    "    J = JOIN Big BY k, Hist BY k;\n"
    "    G = GROUP J ALL;\n"
    "    Count = FOREACH G GENERATE COUNT(J) AS n;\n"
    "  }\n"
    "}\n"
    "node src = src;\n"
    "node proc = proc;\n"
    "edge src -> proc : Out -> In;\n";

/// Min-of-kReps analysis wall time in milliseconds.
double AnalyzeMs(const Workflow& wf, const analysis::AnalyzeOptions& opt) {
  double best = 1e30;
  for (int r = 0; r < kReps; ++r) {
    WallTimer timer;
    Result<analysis::WorkflowFacts> facts =
        analysis::AnalyzeDataflow(wf, opt, nullptr);
    Check(facts);
    analysis::PredictCost(*facts);
    best = std::min(best, timer.ElapsedSeconds() * 1e3);
  }
  return best;
}

}  // namespace

int main() {
  Banner("Static analysis cost",
         "dataflow fixpoint + cost model wall time",
         "interval domain on generator workflows; concrete replay vs "
         "sample size");

  // 1. Interval domain over the generator workflows (no sample data):
  // the path `lipstick analyze <wf>` and the lint gate take.
  DealershipConfig dcfg;
  dcfg.num_dealers = 4;
  dcfg.num_cars = 100;
  dcfg.seed = 7;
  auto dealers = DealershipWorkflow::Create(dcfg);
  Check(dealers.status());
  analysis::AnalyzeOptions dopt;
  dopt.executions = 3;
  dopt.udfs = &(*dealers)->udfs();
  double dealership_ms = AnalyzeMs((*dealers)->workflow(), dopt);
  std::printf("%-40s %8.3f ms\n", "interval: dealerships (4 dealers, x3)",
              dealership_ms);

  ArcticConfig acfg;
  acfg.topology = ArcticTopology::kDense;
  acfg.num_stations = Scaled(16, 4);
  acfg.seed = 7;
  auto arctic = ArcticWorkflow::Create(acfg);
  Check(arctic.status());
  analysis::AnalyzeOptions aopt;
  aopt.executions = 2;
  aopt.udfs = &(*arctic)->udfs();
  double arctic_ms = AnalyzeMs((*arctic)->workflow(), aopt);
  std::printf("%-40s %8.3f ms  (%d stations)\n",
              "interval: arctic dense, x2", arctic_ms, acfg.num_stations);

  // 2. Concrete replay: analysis time grows with the sample it has to
  // re-execute; report absolute time and per-row rate at bench scale.
  Result<Workflow> pipeline = ParseWorkflow(kPipelineWf);
  Check(pipeline);
  int rows = Scaled(20000, 400);
  Bag sample;
  sample.Reserve(rows);
  for (int i = 0; i < rows; ++i) {
    sample.Add(Tuple({Value::Int(i % 97), Value::Int(i % 7)}));
  }
  analysis::AnalyzeOptions copt;
  copt.executions = 2;
  copt.inputs["src"]["Ext"] = sample;
  double concrete_ms = AnalyzeMs(*pipeline, copt);
  std::printf("%-40s %8.3f ms  (%d rows/exec)\n",
              "concrete: filter-join-group pipeline", concrete_ms, rows);
  double us_per_row = concrete_ms * 1e3 / (rows * copt.executions);
  std::printf("%-40s %8.3f us/row\n\n", "concrete replay rate", us_per_row);

  std::printf(
      "expected: the interval fixpoint is independent of data volume and\n"
      "stays in single-digit milliseconds even on the dense arctic\n"
      "topology; concrete replay scales linearly with sample rows (it\n"
      "runs the real interpreter against a scratch graph).\n");

  ResultsJson results("bench_analyze");
  results.Add("interval_dealership_ms", dealership_ms);
  results.Add("interval_arctic_dense_ms", arctic_ms);
  results.Add("concrete_pipeline_ms", concrete_ms);
  results.Add("concrete_us_per_row", us_per_row);
  results.Add("concrete_rows", rows);
  results.Emit();
  return 0;
}

// Figure 7(a): ZoomOut performance, Car dealerships, as a function of
// provenance graph size, for the `dealer` and `aggregate` modules (dealer
// has ~5x more invocations per execution). ZoomIn timings are reported as
// well (paper text: ZoomIn is ~3x faster than ZoomOut).

#include <thread>

#include "bench_util.h"
#include "provenance/snapshot.h"
#include "provenance/traverse.h"
#include "provenance/view.h"
#include "provenance/zoom.h"
#include "workflowgen/dealership.h"

using namespace lipstick;
using namespace lipstick::bench;
using namespace lipstick::workflowgen;

int main() {
  Banner("Figure 7(a)", "ZoomOut / ZoomIn time — Car dealerships",
         "milliseconds per zoom operation vs provenance graph size; "
         "numCars=20000");
  int num_cars = Scaled(20000, 400);
  std::printf("%-10s %-12s %-14s %-14s %-14s %-14s %s\n", "numExec",
              "nodes", "zoomout_dlr", "zoomin_dlr", "zoomout_agg",
              "zoomin_agg", "(ms)");
  double last_ms[4] = {0, 0, 0, 0};
  size_t last_nodes = 0;
  double view_1t_ms = 0, view_4t_ms = 0;
  for (int num_exec : {10, 25, 50, 100, 150}) {
    DealershipConfig cfg;
    cfg.num_cars = num_cars;
    cfg.num_executions = num_exec;
    cfg.seed = 555;
    cfg.accept_probability = 0;
    auto wf = DealershipWorkflow::Create(cfg);
    Check(wf.status());
    ProvenanceGraph graph;
    for (int e = 1; e <= num_exec; ++e) {
      Check((*wf)->ExecuteOnce(e, &graph).status());
    }
    graph.Seal();
    size_t nodes = graph.num_nodes();

    double ms[4];
    int idx = 0;
    for (const char* module : {"dealer", "aggregate"}) {
      Zoomer zoomer(&graph);
      WallTimer t_out;
      Check(zoomer.ZoomOut({module}));
      ms[idx++] = t_out.ElapsedMillis();
      WallTimer t_in;
      Check(zoomer.ZoomIn({module}));
      ms[idx++] = t_in.ElapsedMillis();
    }
    std::printf("%-10d %-12zu %-14.2f %-14.2f %-14.2f %-14.2f\n", num_exec,
                nodes, ms[0], ms[1], ms[2], ms[3]);
    for (int i = 0; i < 4; ++i) last_ms[i] = ms[i];
    last_nodes = nodes;
    if (num_exec == 150) {
      // Multi-thread variant on the largest graph (restored by the ZoomIn
      // round trips above): lazy zoom views served from one shared
      // snapshot, batch of kViews constructions, 1 vs 4 worker threads.
      graph.Seal();
      Result<GraphSnapshot> snap = GraphSnapshot::Capture(graph);
      Check(snap.status());
      constexpr size_t kViews = 8;
      auto serve = [&](int threads) {
        WallTimer t;
        ParallelFor(kViews, threads, [&](size_t b, size_t e, int) {
          for (size_t i = b; i < e; ++i) {
            Result<GraphView> view = ZoomOutView(*snap, {"dealer"}, 1);
            Check(view.status());
          }
        });
        return t.ElapsedMillis();
      };
      serve(4);  // warm the visited-bitmap pool
      view_1t_ms = serve(1);
      view_4t_ms = serve(4);
      std::printf("\nzoom views (batch of %zu over one snapshot): "
                  "1 thread %.2f ms, 4 threads %.2f ms "
                  "(%.2fx, %u hw threads)\n",
                  kViews, view_1t_ms, view_4t_ms, view_1t_ms / view_4t_ms,
                  std::thread::hardware_concurrency());
    }
  }
  std::printf(
      "\nexpected shape (paper): both operations linear in graph size;\n"
      "zooming the aggregate module is faster than the dealer module\n"
      "(fewer invocations); ZoomIn faster than ZoomOut.\n");

  ResultsJson results("bench_fig7a_zoom");
  results.Add("nodes", static_cast<double>(last_nodes));
  results.Add("zoomout_dealer_ms", last_ms[0]);
  results.Add("zoomin_dealer_ms", last_ms[1]);
  results.Add("zoomout_aggregate_ms", last_ms[2]);
  results.Add("zoomin_aggregate_ms", last_ms[3]);
  results.Add("zoomout_view_1t_ms", view_1t_ms);
  results.Add("zoomout_view_4t_ms", view_4t_ms);
  results.Add("zoom_view_speedup_4t", view_1t_ms / view_4t_ms);
  results.Emit();
  return 0;
}

// Figure 7(b): subgraph query performance, Car dealerships. A subgraph
// query returns a node's ancestors, descendants, and siblings of
// descendants. Following the paper's methodology, the 50 nodes with the
// highest number of children are queried and the time is reported against
// the size of the resulting subgraph.

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "provenance/snapshot.h"
#include "provenance/subgraph.h"
#include "provenance/traverse.h"
#include "workflowgen/dealership.h"

using namespace lipstick;
using namespace lipstick::bench;
using namespace lipstick::workflowgen;

int main() {
  Banner("Figure 7(b)", "subgraph query time — Car dealerships",
         "ms per query vs subgraph result size; 50 highest-fanout nodes; "
         "numCars=20000");
  int num_cars = Scaled(20000, 400);
  DealershipConfig cfg;
  cfg.num_cars = num_cars;
  cfg.num_executions = Scaled(100, 5);
  cfg.seed = 777;
  cfg.accept_probability = 0;
  auto wf = DealershipWorkflow::Create(cfg);
  Check(wf.status());
  ProvenanceGraph graph;
  for (int e = 1; e <= cfg.num_executions; ++e) {
    Check((*wf)->ExecuteOnce(e, &graph).status());
  }
  graph.Seal();
  std::printf("graph: %zu nodes, %zu edges\n\n", graph.num_alive(),
              graph.num_edges());

  // Pick the 50 nodes with the most children.
  std::vector<std::pair<size_t, NodeId>> fanout;
  graph.ForEachAliveNode([&](NodeId id) {
    fanout.emplace_back(graph.ChildrenOf(id).size(), id);
  });
  std::sort(fanout.rbegin(), fanout.rend());
  if (fanout.size() > 50) fanout.resize(50);

  std::printf("%-14s %-14s %-12s %s\n", "node_children", "subgraph_nodes",
              "time_ms", "node_label");
  std::vector<std::pair<size_t, std::pair<double, NodeId>>> rows;
  for (const auto& [children, id] : fanout) {
    WallTimer timer;
    auto sub = *SubgraphQuery(graph, id);
    double ms = timer.ElapsedMillis();
    rows.push_back({sub.size(), {ms, id}});
  }
  std::sort(rows.begin(), rows.end());
  double total_ms = 0, max_ms = 0;
  for (const auto& [size, rest] : rows) {
    const auto& [ms, id] = rest;
    std::printf("%-14zu %-14zu %-12.3f %s\n",
                graph.ChildrenOf(id).size(), size, ms,
                NodeLabelToString(graph.node(id).label()));
    total_ms += ms;
    max_ms = std::max(max_ms, ms);
  }
  std::printf(
      "\nexpected shape (paper): time ~linear in subgraph size, sub-second\n"
      "even for subgraphs of tens of thousands of nodes.\n");

  // Multi-thread variant: the same query batch served concurrently over
  // one immutable snapshot (the CLI --batch scenario), 1 vs 4 workers.
  Result<GraphSnapshot> snap = GraphSnapshot::Capture(graph);
  Check(snap.status());
  std::vector<NodeId> ids;
  for (const auto& [children, id] : fanout) ids.push_back(id);
  // Repeat the 50-query batch until a single-threaded pass takes tens of
  // milliseconds: worker startup (~0.1 ms) must stay noise relative to the
  // measurement, or small bench scales would understate the speedup.
  int reps = static_cast<int>(
      std::clamp(std::ceil(40.0 / std::max(total_ms, 0.05)), 1.0, 64.0));
  std::vector<NodeId> batch;
  batch.reserve(ids.size() * static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    batch.insert(batch.end(), ids.begin(), ids.end());
  }
  auto serve = [&](int threads) {
    WallTimer t;
    ParallelFor(batch.size(), threads, [&](size_t b, size_t e, int) {
      for (size_t i = b; i < e; ++i) {
        Check(SubgraphQuery(*snap, batch[i]).status());
      }
    });
    return t.ElapsedMillis();
  };
  serve(4);  // warm the visited-bitmap pool
  double batch_1t_ms = serve(1);
  double batch_4t_ms = serve(4);
  std::printf("\nbatch of %zu subgraph queries (%d reps of %zu) over one "
              "snapshot: 1 thread %.2f ms, 4 threads %.2f ms "
              "(%.2fx, %u hw threads)\n",
              batch.size(), reps, ids.size(), batch_1t_ms, batch_4t_ms,
              batch_1t_ms / batch_4t_ms,
              std::thread::hardware_concurrency());

  ResultsJson results("bench_fig7b_subgraph_dealerships");
  results.Add("queries", static_cast<double>(rows.size()));
  results.Add("avg_subgraph_ms", total_ms / rows.size());
  results.Add("max_subgraph_ms", max_ms);
  results.Add("batch_subgraph_1t_ms", batch_1t_ms);
  results.Add("batch_subgraph_4t_ms", batch_4t_ms);
  results.Add("subgraph_speedup_4t", batch_1t_ms / batch_4t_ms);
  results.Emit();
  return 0;
}

// Figure 7(c): subgraph query performance, Arctic stations with 24
// modules, by selectivity across topologies. As in the paper, selectivity
// drives the number of nodes/edges in the graph and hence the query time;
// topology affects the in-degree of module/workflow output nodes.

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "provenance/snapshot.h"
#include "provenance/subgraph.h"
#include "provenance/traverse.h"
#include "workflowgen/arctic.h"

using namespace lipstick;
using namespace lipstick::bench;
using namespace lipstick::workflowgen;

namespace {

struct Topo {
  const char* name;
  ArcticTopology topology;
  int fan_out;
};

}  // namespace

int main() {
  Banner("Figure 7(c)", "subgraph query time — Arctic stations, 24 modules",
         "ms per subgraph query on the last 50 GlobalMin outputs, by "
         "selectivity and topology");
  const Topo kTopos[] = {
      {"serial", ArcticTopology::kSerial, 0},
      {"parallel", ArcticTopology::kParallel, 0},
      {"dense_fo2", ArcticTopology::kDense, 2},
      {"dense_fo3", ArcticTopology::kDense, 3},
      {"dense_fo6", ArcticTopology::kDense, 6},
      {"dense_fo12", ArcticTopology::kDense, 12},
  };
  int num_exec = Scaled(100, 5);
  std::printf("%-12s %-12s %-12s %-12s %-10s %s\n", "selectivity",
              "topology", "nodes", "avg_ms", "max_ms", "max_subgraph");
  double worst_avg_ms = 0;
  size_t largest_sub = 0;
  for (Selectivity sel : {Selectivity::kAll, Selectivity::kSeason,
                          Selectivity::kMonth, Selectivity::kYear}) {
    for (const Topo& topo : kTopos) {
      ArcticConfig cfg;
      cfg.topology = topo.topology;
      cfg.fan_out = topo.fan_out;
      cfg.num_stations = 24;
      cfg.selectivity = sel;
      cfg.history_years = Scaled(40, 2);
      cfg.seed = 11;
      auto wf = ArcticWorkflow::Create(cfg);
      Check(wf.status());
      ProvenanceGraph graph;
      Check((*wf)->RunSeries(num_exec, &graph).status());
      graph.Seal();

      // Query the workflow's final outputs (the GlobalMin "o" nodes of the
      // last 50 executions): their subgraphs cover the execution's full
      // derivation, whose size is governed by the selectivity.
      std::vector<NodeId> targets;
      for (const InvocationInfo& inv : graph.invocations()) {
        if (graph.str(inv.module_name) != "arctic_out") continue;
        for (NodeId out : inv.output_nodes) {
          if (graph.Contains(out)) targets.push_back(out);
        }
      }
      if (targets.size() > 50) {
        targets.erase(targets.begin(), targets.end() - 50);
      }

      double total_ms = 0, max_ms = 0;
      size_t max_sub = 0;
      for (NodeId id : targets) {
        WallTimer timer;
        auto sub = *SubgraphQuery(graph, id);
        double ms = timer.ElapsedMillis();
        total_ms += ms;
        max_ms = std::max(max_ms, ms);
        max_sub = std::max(max_sub, sub.size());
      }
      double avg_ms = total_ms / targets.size();
      std::printf("%-12s %-12s %-12zu %-12.3f %-10.3f %zu\n",
                  SelectivityName(sel), topo.name, graph.num_alive(),
                  avg_ms, max_ms, max_sub);
      worst_avg_ms = std::max(worst_avg_ms, avg_ms);
      largest_sub = std::max(largest_sub, max_sub);
    }
  }
  std::printf(
      "\nexpected shape (paper): query time increases with decreasing\n"
      "selectivity (more nodes/edges); topology gives second-order\n"
      "differences via output-node in-degrees (dense mid fan-outs\n"
      "slowest).\n");

  // Multi-thread variant on the paper's default configuration (parallel
  // topology, month selectivity): the GlobalMin query batch served
  // concurrently over one immutable snapshot, 1 vs 4 workers.
  double batch_1t_ms = 0, batch_4t_ms = 0;
  {
    ArcticConfig cfg;
    cfg.topology = ArcticTopology::kParallel;
    cfg.num_stations = 24;
    cfg.selectivity = Selectivity::kMonth;
    cfg.history_years = Scaled(40, 2);
    cfg.seed = 11;
    auto wf = ArcticWorkflow::Create(cfg);
    Check(wf.status());
    ProvenanceGraph graph;
    Check((*wf)->RunSeries(num_exec, &graph).status());
    graph.Seal();
    std::vector<NodeId> targets;
    for (const InvocationInfo& inv : graph.invocations()) {
      if (graph.str(inv.module_name) != "arctic_out") continue;
      for (NodeId out : inv.output_nodes) {
        if (graph.Contains(out)) targets.push_back(out);
      }
    }
    if (targets.size() > 50) {
      targets.erase(targets.begin(), targets.end() - 50);
    }
    Result<GraphSnapshot> snap = GraphSnapshot::Capture(graph);
    Check(snap.status());
    auto serve = [&](const std::vector<NodeId>& batch, int threads) {
      WallTimer t;
      ParallelFor(batch.size(), threads, [&](size_t b, size_t e, int) {
        for (size_t i = b; i < e; ++i) {
          Check(SubgraphQuery(*snap, batch[i]).status());
        }
      });
      return t.ElapsedMillis();
    };
    // Repeat the query batch until a single-threaded pass takes tens of
    // milliseconds: worker startup (~0.1 ms) must stay noise relative to
    // the measurement, or small bench scales would understate the speedup.
    double probe_ms = serve(targets, 1);
    int reps = static_cast<int>(
        std::clamp(std::ceil(40.0 / std::max(probe_ms, 0.05)), 1.0, 64.0));
    std::vector<NodeId> batch;
    batch.reserve(targets.size() * static_cast<size_t>(reps));
    for (int r = 0; r < reps; ++r) {
      batch.insert(batch.end(), targets.begin(), targets.end());
    }
    serve(batch, 4);  // warm the visited-bitmap pool
    batch_1t_ms = serve(batch, 1);
    batch_4t_ms = serve(batch, 4);
    std::printf("\nbatch of %zu subgraph queries (%d reps of %zu) over one "
                "snapshot: 1 thread %.2f ms, 4 threads %.2f ms "
                "(%.2fx, %u hw threads)\n",
                batch.size(), reps, targets.size(), batch_1t_ms, batch_4t_ms,
                batch_1t_ms / batch_4t_ms,
                std::thread::hardware_concurrency());
  }

  ResultsJson results("bench_fig7c_subgraph_arctic");
  results.Add("worst_avg_subgraph_ms", worst_avg_ms);
  results.Add("largest_subgraph_nodes", static_cast<double>(largest_sub));
  results.Add("batch_subgraph_1t_ms", batch_1t_ms);
  results.Add("batch_subgraph_4t_ms", batch_4t_ms);
  results.Add("subgraph_speedup_4t", batch_1t_ms / batch_4t_ms);
  results.Emit();
  return 0;
}

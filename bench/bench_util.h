#ifndef LIPSTICK_BENCH_BENCH_UTIL_H_
#define LIPSTICK_BENCH_BENCH_UTIL_H_

// Shared helpers for the Lipstick experiment harnesses. Each bench binary
// regenerates one table/figure of the paper's Section 5 and prints the
// same series the paper plots. Absolute times differ from the paper's 2011
// hardware and Pig/Hadoop stack; the *shapes* (growth, ordering of
// configurations, overhead ratios) are the reproduction target — see
// EXPERIMENTS.md.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/timer.h"
#include "obs/json.h"

namespace lipstick::bench {

inline void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
void Check(const Result<T>& result) {
  Check(result.status());
}

/// Prints the figure banner.
inline void Banner(const char* figure, const char* title,
                   const char* setup) {
  std::printf("==============================================================\n");
  std::printf("%s: %s\n", figure, title);
  std::printf("%s\n", setup);
  std::printf("==============================================================\n");
}

/// Scale factor for quick smoke runs: LIPSTICK_BENCH_SCALE=0.1 shrinks the
/// workloads to ~10%%. Default 1.0 (paper scale where feasible).
inline double Scale() {
  const char* env = std::getenv("LIPSTICK_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double s = std::atof(env);
  return s > 0 ? s : 1.0;
}

inline int Scaled(int n, int min_value = 1) {
  int v = static_cast<int>(n * Scale());
  return v < min_value ? min_value : v;
}

/// Machine-readable result emission, consumed by tools/bench_compare.py.
/// Each harness creates one ResultsJson, adds its headline metrics, and
/// Emit()s a single line:
///
///   results_json: {"bench":"bench_x","scale":0.02,"metrics":{...}}
///
/// Metric naming convention: suffix the unit (`_seconds`, `_ms`, `_us`,
/// `_ns`, `_bytes`, `_bytes_per_node`, `_pct`). The CI perf gate treats
/// time/space-suffixed metrics as "lower is better" and fails on
/// regressions vs the checked-in BENCH_baseline.json; unsuffixed metrics
/// (counts, ratios used as sanity echoes) are recorded but not gated.
class ResultsJson {
 public:
  explicit ResultsJson(std::string bench_name)
      : bench_(std::move(bench_name)) {}

  void Add(const std::string& metric, double value) {
    metrics_.emplace_back(metric, value);
  }

  /// Prints the single results_json line to stdout.
  void Emit() const {
    obs::JsonValue root = obs::JsonValue::Object();
    root.Set("bench", obs::JsonValue::Str(bench_));
    root.Set("scale", obs::JsonValue::Number(Scale()));
    obs::JsonValue metrics = obs::JsonValue::Object();
    for (const auto& [name, value] : metrics_) {
      metrics.Set(name, obs::JsonValue::Number(value));
    }
    root.Set("metrics", std::move(metrics));
    std::printf("results_json: %s\n", root.Serialize().c_str());
  }

 private:
  std::string bench_;
  std::vector<std::pair<std::string, double>> metrics_;
};

}  // namespace lipstick::bench

#endif  // LIPSTICK_BENCH_BENCH_UTIL_H_

// Figure 5(b): Pig Latin workflow execution time, Arctic stations, local
// mode. Average seconds per execution for serial / parallel / dense
// topologies (24 station modules, selectivity = month), with and without
// provenance tracking, as a function of the number of executions.

#include "bench_util.h"
#include "workflowgen/arctic.h"

using namespace lipstick;
using namespace lipstick::bench;
using namespace lipstick::workflowgen;

namespace {

struct Config {
  const char* name;
  ArcticTopology topology;
  int fan_out;
};

double RunSeries(const Config& config, int num_exec, bool track) {
  ArcticConfig cfg;
  cfg.topology = config.topology;
  cfg.fan_out = config.fan_out;
  cfg.num_stations = 24;
  cfg.selectivity = Selectivity::kMonth;
  cfg.history_years = Scaled(40, 2);
  cfg.seed = 99;
  auto wf = ArcticWorkflow::Create(cfg);
  Check(wf.status());
  ProvenanceGraph graph;
  WallTimer timer;
  Check((*wf)->RunSeries(num_exec, track ? &graph : nullptr).status());
  return timer.ElapsedSeconds() / num_exec;
}

}  // namespace

int main() {
  Banner("Figure 5(b)", "workflow execution time — Arctic stations",
         "24 station modules, selectivity=month, dense fan-out 6; "
         "avg sec per execution vs number of executions");
  const Config kConfigs[] = {
      {"serial", ArcticTopology::kSerial, 0},
      {"parallel", ArcticTopology::kParallel, 0},
      {"dense", ArcticTopology::kDense, 6},
  };
  std::printf("%-10s %-10s %-16s %-18s %s\n", "topology", "numExec",
              "no_provenance", "with_provenance", "overhead");
  ResultsJson results("bench_fig5b_tracking_arctic");
  for (const Config& config : kConfigs) {
    double plain = 0, tracked = 0;
    for (int num_exec : {10, 40, 70, 100}) {
      plain = RunSeries(config, num_exec, false);
      tracked = RunSeries(config, num_exec, true);
      std::printf("%-10s %-10d %-16.4f %-18.4f %.1f%%\n", config.name,
                  num_exec, plain, tracked,
                  100.0 * (tracked - plain) / plain);
    }
    results.Add(std::string(config.name) + "_with_prov_seconds", tracked);
  }
  std::printf(
      "\nexpected shape (paper): time roughly flat in numExec (no direct\n"
      "dependency between executions); tracking overhead ~16-35%%; the\n"
      "paper's serial>dense>parallel time ordering stems from its\n"
      "per-program file-system parameter passing, which this in-process\n"
      "engine does not pay, so topologies here differ mainly in edge\n"
      "count (dense > serial > parallel).\n");
  results.Emit();
  return 0;
}

// Pipeline execution: fused composed-view plans vs materializing a
// standalone graph between every stage. Workload: the paper's dealership
// provenance and the canonical three-stage pipeline
// "zoomout dealer | subgraph <output> | stats" — the shape Figure 7's
// zoom/subgraph operators take when chained. Reports p50/p99 per strategy
// plus the warm composed-view-cache variant (prefix reuse).

#include <algorithm>
#include <vector>

#include "bench_util.h"
#include "common/str_util.h"
#include "provenance/exec.h"
#include "provenance/optimizer.h"
#include "provenance/plan.h"
#include "provenance/query.h"
#include "provenance/snapshot.h"
#include "workflowgen/dealership.h"

using namespace lipstick;
using namespace lipstick::bench;
using namespace lipstick::workflowgen;

namespace {

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t idx = static_cast<size_t>(p * (sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

int main() {
  Banner("Pipeline plans", "fused composed view vs per-stage materialization",
         "zoomout dealer | subgraph <agg output> | stats; numCars=20000, "
         "50 executions");
  DealershipConfig cfg;
  cfg.num_cars = Scaled(20000, 400);
  cfg.num_executions = Scaled(50, 3);
  cfg.seed = 555;
  cfg.accept_probability = 0;
  auto wf = DealershipWorkflow::Create(cfg);
  Check(wf.status());
  ProvenanceGraph graph;
  Check((*wf)->Run(&graph).status());
  graph.Seal();
  Result<GraphSnapshot> snap = GraphSnapshot::Capture(graph);
  Check(snap.status());

  auto outputs = FindNodes(graph, And(ByRole(NodeRole::kModuleOutput),
                                      ByModule(graph, "aggregate")));
  if (outputs.empty()) {
    std::fprintf(stderr, "bench error: no aggregate outputs\n");
    return 1;
  }
  const std::string query =
      StrCat("zoomout dealer | subgraph ", outputs.front(), " | stats");
  Result<Plan> plan = ParsePlan(query, {});
  Check(plan.status());
  OptimizedPlan optimized = OptimizePlan(*plan);

  const int reps = Scaled(40, 5);
  std::vector<double> fused_ms, naive_ms, cached_ms;
  std::string fused_out, naive_out;

  // Warm the visited-bitmap pool so the first rep is not an outlier.
  Check(ExecutePlan(*snap, optimized));

  for (int i = 0; i < reps; ++i) {
    WallTimer t;
    Result<std::string> out = ExecutePlan(*snap, optimized);
    Check(out.status());
    fused_ms.push_back(t.ElapsedMillis());
    fused_out = *out;
  }
  for (int i = 0; i < reps; ++i) {
    WallTimer t;
    Result<std::string> out = ExecutePlanNaive(*snap, *plan);
    Check(out.status());
    naive_ms.push_back(t.ElapsedMillis());
    naive_out = *out;
  }
  // Warm prefix cache: every rep after the first clones the cached
  // composed view instead of recomputing the zoomout + subgraph stages.
  PlanViewCache cache(8);
  ExecOptions cached_opts;
  cached_opts.cache = &cache;
  cached_opts.scope = "bench";
  Check(ExecutePlan(*snap, optimized, cached_opts));
  for (int i = 0; i < reps; ++i) {
    WallTimer t;
    Result<std::string> out = ExecutePlan(*snap, optimized, cached_opts);
    Check(out.status());
    cached_ms.push_back(t.ElapsedMillis());
  }

  if (fused_out != naive_out) {
    std::fprintf(stderr, "bench error: fused/naive outputs differ\n");
    return 1;
  }

  std::sort(fused_ms.begin(), fused_ms.end());
  std::sort(naive_ms.begin(), naive_ms.end());
  std::sort(cached_ms.begin(), cached_ms.end());
  double fused_p50 = Percentile(fused_ms, 0.50);
  double naive_p50 = Percentile(naive_ms, 0.50);
  double cached_p50 = Percentile(cached_ms, 0.50);

  std::printf("%-14s %-10s %-10s %-10s\n", "strategy", "p50_ms", "p99_ms",
              "reps");
  std::printf("%-14s %-10.3f %-10.3f %-10d\n", "fused", fused_p50,
              Percentile(fused_ms, 0.99), reps);
  std::printf("%-14s %-10.3f %-10.3f %-10d\n", "materialized", naive_p50,
              Percentile(naive_ms, 0.99), reps);
  std::printf("%-14s %-10.3f %-10.3f %-10d\n", "fused+cache", cached_p50,
              Percentile(cached_ms, 0.99), reps);
  std::printf("\nfused speedup over per-stage materialization: %.2fx "
              "(cache-warm: %.2fx); outputs byte-identical\n",
              naive_p50 / fused_p50, naive_p50 / cached_p50);

  ResultsJson results("bench_pipeline");
  results.Add("nodes", static_cast<double>(graph.num_nodes()));
  results.Add("fused_p50_ms", fused_p50);
  results.Add("materialized_p50_ms", naive_p50);
  results.Add("cached_p50_ms", cached_p50);
  results.Add("fused_speedup", naive_p50 / fused_p50);
  results.Add("cached_speedup", naive_p50 / cached_p50);
  results.Emit();
  return 0;
}

// WAL durability overhead: cost of the always-compiled-in graph mutation
// hooks (the wal_sink() branch on every append/intern/invocation) and of
// an attached log under each fsync policy. The durability layer follows
// the fault and observability layers' bar: a run that never asked for a
// WAL must pay well under 2% for carrying the hooks.

#include <algorithm>
#include <filesystem>
#include <memory>

#include "bench_util.h"
#include "provenance/graph.h"
#include "provenance/wal.h"
#include "workflow/executor.h"
#include "workflowgen/dealership.h"

using namespace lipstick;
using namespace lipstick::bench;
using namespace lipstick::workflowgen;

namespace {

/// Nanoseconds per disarmed sink check: the relaxed pointer load + branch
/// every graph mutation pays when no WAL is attached. The asm fence keeps
/// the loop-invariant load from being hoisted.
double BranchNanos(const ProvenanceGraph& graph, size_t calls) {
  WallTimer timer;
  for (size_t i = 0; i < calls; ++i) {
    GraphWalSink* sink = graph.wal_sink();
    asm volatile("" : : "g"(sink) : "memory");
    if (sink != nullptr) Check(Status::Internal("sink unexpectedly set"));
  }
  return timer.ElapsedSeconds() * 1e9 / calls;
}

/// Counts hook crossings without doing any work in them, so the
/// per-execution crossing count can be charged the measured branch cost.
class CountingSink final : public GraphWalSink {
 public:
  uint64_t crossings = 0;

  void OnIntern(StrId, std::string_view) override { ++crossings; }
  void OnNodeAppend(NodeId, NodeLabel, NodeRole, uint8_t, uint32_t, StrId,
                    std::span<const NodeId>) override {
    ++crossings;
  }
  void OnNodeValue(NodeId, const Value&) override { ++crossings; }
  void OnSetParents(NodeId, std::span<const NodeId>) override {
    ++crossings;
  }
  void OnSetAlive(NodeId, bool) override { ++crossings; }
  void OnKillShardTail(uint32_t, uint64_t) override { ++crossings; }
  void OnBeginInvocation(uint32_t, const InvocationInfo&) override {
    ++crossings;
  }
  void OnInvocationNode(uint32_t, int, NodeId) override { ++crossings; }
  void OnAbortInvocation(uint32_t) override { ++crossings; }
  void OnTruncateInvocations(uint64_t) override { ++crossings; }
};

/// Average seconds per tracked dealership execution. `wal` (optional) is
/// installed through the executor's default options — the exact code path
/// `lipstick run --wal` takes.
double TrackedSecPerExec(int num_cars, int num_exec, Wal* wal,
                         GraphWalSink* counter = nullptr) {
  DealershipConfig cfg;
  cfg.num_cars = num_cars;
  cfg.num_executions = num_exec;
  cfg.seed = 12345;
  cfg.accept_probability = 0;
  auto wf = DealershipWorkflow::Create(cfg);
  Check(wf.status());
  ProvenanceGraph graph;
  if (wal != nullptr) {
    Check(wal->Attach(&graph));
    ExecutionOptions options;
    options.durability = wal;
    (*wf)->executor().set_default_options(options);
  } else if (counter != nullptr) {
    graph.AttachWalSink(counter);
  }
  WallTimer timer;
  for (int e = 1; e <= num_exec; ++e) {
    Check((*wf)->ExecuteOnce(e, &graph).status());
  }
  double seconds = timer.ElapsedSeconds() / num_exec;
  if (wal != nullptr) Check(wal->Close());
  return seconds;
}

double WalSecPerExec(int num_cars, int num_exec, FsyncPolicy policy) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "lipstick_bench_wal";
  fs::remove_all(dir);
  WalOptions options;
  options.fsync = policy;
  auto wal = Wal::Open(dir.string(), options);
  Check(wal.status());
  double seconds = TrackedSecPerExec(num_cars, num_exec, wal->get());
  fs::remove_all(dir);
  return seconds;
}

double Pct(double base, double measured) {
  return (measured / base - 1.0) * 100.0;
}

}  // namespace

int main() {
  Banner("WAL overhead", "cost of durability hooks and the attached log",
         "tracked dealership runs; target: < 2% disarmed, fsync policy "
         "scales the armed price");

  // 1. Micro: the disarmed hook is one pointer load + branch per graph
  // mutation.
  ProvenanceGraph idle_graph;
  const size_t kCalls = static_cast<size_t>(Scaled(20000000, 100000));
  double branch_ns = BranchNanos(idle_graph, kCalls);
  std::printf("%-36s %8.2f ns\n\n", "disarmed sink check", branch_ns);

  // 2. End to end: tracked executions with no sink (production default),
  // then with a WAL attached under each fsync policy. Best of 3 each.
  int num_cars = Scaled(20000, 400);
  int num_exec = 10;
  double base = 1e300, never = 1e300, savepoint = 1e300, commit = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    base = std::min(base,
                    TrackedSecPerExec(num_cars, num_exec, nullptr));
    never = std::min(never, WalSecPerExec(num_cars, num_exec,
                                          FsyncPolicy::kNever));
    savepoint = std::min(savepoint, WalSecPerExec(num_cars, num_exec,
                                                  FsyncPolicy::kOnSavepoint));
    commit = std::min(commit, WalSecPerExec(num_cars, num_exec,
                                            FsyncPolicy::kOnCommit));
  }
  std::printf("%-36s %8.4f sec/exec\n", "tracked, no WAL (disarmed)", base);
  std::printf("%-36s %8.4f sec/exec  (%+.2f%%)\n", "WAL, fsync=never",
              never, Pct(base, never));
  std::printf("%-36s %8.4f sec/exec  (%+.2f%%)\n", "WAL, fsync=savepoint",
              savepoint, Pct(base, savepoint));
  std::printf("%-36s %8.4f sec/exec  (%+.2f%%)\n\n", "WAL, fsync=commit",
              commit, Pct(base, commit));

  // 3. The timer-noise-free disarmed bound: count the sink crossings of
  // one tracked execution, charge each the measured branch cost.
  CountingSink counting;
  TrackedSecPerExec(num_cars, num_exec, nullptr, &counting);
  uint64_t crossings = counting.crossings / num_exec;
  double computed_pct = crossings * branch_ns * 1e-9 / base * 100.0;
  if (computed_pct < 0) computed_pct = 0;
  std::printf("%-36s %8llu crossings/exec -> %.4f%% of exec time\n\n",
              "computed disarmed-hook bound",
              static_cast<unsigned long long>(crossings), computed_pct);

  std::printf(
      "expected: the disarmed branch costs ~1 ns per graph mutation —\n"
      "orders of magnitude under the 2%% ceiling. An attached log pays\n"
      "for serialization and group-commit writes (fsync=never), plus one\n"
      "fsync per execution (savepoint) or per module invocation (commit);\n"
      "that is the documented price of opting into durability.\n");

  ResultsJson results("bench_wal_overhead");
  results.Add("disarmed_branch_ns", branch_ns);
  results.Add("computed_overhead_pct", computed_pct);
  results.Add("tracked_sec_per_exec", base);
  results.Add("wal_never_overhead_pct", Pct(base, never));
  results.Add("wal_savepoint_overhead_pct", Pct(base, savepoint));
  results.Add("wal_commit_overhead_pct", Pct(base, commit));
  results.Emit();
  return 0;
}

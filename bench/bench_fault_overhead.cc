// Fault-tolerance overhead: cost of the always-compiled-in failure hooks
// (FaultInjector::Fire at UDF / statement / node boundaries) and of the
// ExecutionOptions machinery (retry bookkeeping, per-attempt deadline,
// state snapshots) on the happy path. The robustness layer is acceptable
// only if a fault-free run pays well under 2% for it.

#include <algorithm>
#include <memory>

#include "bench_util.h"
#include "common/fault.h"
#include "provenance/graph.h"
#include "workflow/executor.h"
#include "workflow/module.h"
#include "workflowgen/dealership.h"

using namespace lipstick;
using namespace lipstick::bench;
using namespace lipstick::workflowgen;

namespace {

/// Nanoseconds per FaultInjector::Fire call in the current armed state.
double FireNanos(size_t calls) {
  WallTimer timer;
  for (size_t i = 0; i < calls; ++i) {
    Status st = FaultInjector::Fire("bench.point", "bench-key");
    if (!st.ok()) Check(st);  // keeps the call from being optimized away
  }
  return timer.ElapsedSeconds() * 1e9 / calls;
}

/// Average seconds per dealership execution with the injector in its
/// current state (ExecuteOnce uses default options: the exact code path
/// production runs take).
double DealershipSecPerExec(int num_cars, int num_exec) {
  DealershipConfig cfg;
  cfg.num_cars = num_cars;
  cfg.num_executions = num_exec;
  cfg.seed = 12345;
  cfg.accept_probability = 0;
  auto wf = DealershipWorkflow::Create(cfg);
  Check(wf.status());
  WallTimer timer;
  for (int e = 1; e <= num_exec; ++e) {
    Check((*wf)->ExecuteOnce(e, nullptr).status());
  }
  return timer.ElapsedSeconds() / num_exec;
}

SchemaPtr NumSchema() {
  return Schema::Make({Field("x", FieldType::Int())});
}

/// A 6-node stateful chain driven directly through Execute(), so the
/// options-bearing overload can be compared against the default one.
struct Chain {
  Workflow wf;
  std::unique_ptr<WorkflowExecutor> exec;

  explicit Chain(int num_nodes) {
    auto source = MakeModule("source", {{"Ext", NumSchema()}}, {},
                             {{"Out", NumSchema()}}, "",
                             "Out = FOREACH Ext GENERATE x;");
    Check(source.status());
    Check(wf.AddModule(std::move(*source)));
    // State accumulates (so per-attempt snapshots have real weight) but
    // the output is the transformed *input*, keeping data volume flat
    // along the chain.
    auto acc = MakeModule(
        "acc", {{"In", NumSchema()}}, {{"Seen", NumSchema()}},
        {{"Out", NumSchema()}}, "Seen = UNION Seen, In;",
        "F = FILTER In BY x >= 0;\n"
        "Out = FOREACH F GENERATE x + 1 AS x;");
    Check(acc.status());
    Check(wf.AddModule(std::move(*acc)));
    Check(wf.AddNode("in", "source"));
    std::string prev = "in";
    for (int i = 0; i < num_nodes; ++i) {
      std::string id = "n" + std::to_string(i);
      Check(wf.AddNode(id, "acc"));
      Check(wf.AddEdge(prev, id, {EdgeRelation{"Out", "In"}}));
      prev = id;
    }
    exec = std::make_unique<WorkflowExecutor>(&wf, nullptr);
    Check(exec->Initialize());
  }

  double SecPerExec(int num_exec, int num_tuples,
                    const ExecutionOptions* options) {
    WallTimer timer;
    for (int e = 0; e < num_exec; ++e) {
      WorkflowInputs inputs;
      Bag ext;
      for (int i = 0; i < num_tuples; ++i) ext.Add(Tuple({Value::Int(i)}));
      inputs["in"]["Ext"] = std::move(ext);
      auto out = options != nullptr
                     ? exec->Execute(inputs, nullptr, *options)
                     : exec->Execute(inputs, nullptr);
      Check(out.status());
    }
    return timer.ElapsedSeconds() / num_exec;
  }
};

/// Best-of-3 on a fresh executor each time, so every configuration starts
/// from empty module state and one slow run (scheduler hiccup, allocator
/// growth) cannot skew a configuration.
double ChainSecPerExec(int num_exec, int num_tuples,
                       const ExecutionOptions* options) {
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    Chain chain(6);
    best = std::min(best, chain.SecPerExec(num_exec, num_tuples, options));
  }
  return best;
}

double Pct(double base, double measured) {
  return (measured / base - 1.0) * 100.0;
}

}  // namespace

int main() {
  Banner("Fault overhead", "cost of failure hooks and retry machinery",
         "happy path only (no fault ever fires); target: < 2% overhead");
  FaultInjector::Global().Reset();

  // 1. The raw hook: a disarmed Fire is one relaxed atomic load.
  const size_t kCalls = static_cast<size_t>(Scaled(20000000, 100000));
  double disarmed_ns = FireNanos(kCalls);
  // Armed with a spec for an unrelated point: Fire now takes the mutex
  // and scans the (one-element) spec list, still without firing.
  FaultInjector::FaultSpec unrelated;
  unrelated.point = "never.fires";
  FaultInjector::Global().Arm(unrelated);
  double armed_ns = FireNanos(kCalls);
  FaultInjector::Global().Reset();
  std::printf("%-34s %8.2f ns/call\n", "Fire, disarmed (production)",
              disarmed_ns);
  std::printf("%-34s %8.2f ns/call\n\n", "Fire, armed non-matching",
              armed_ns);

  // 2. End to end, dealership workflow, default options: disarmed hooks
  // vs hooks armed with a never-matching fault. Best of 3, interleaved.
  int num_cars = Scaled(20000, 400);
  int num_exec = 10;
  double base = 1e300, armed = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    base = std::min(base, DealershipSecPerExec(num_cars, num_exec));
    FaultInjector::Global().Arm(unrelated);
    armed = std::min(armed, DealershipSecPerExec(num_cars, num_exec));
    FaultInjector::Global().Reset();
  }
  std::printf("%-34s %8.4f sec/exec\n", "dealerships, disarmed", base);
  std::printf("%-34s %8.4f sec/exec  (%+.2f%%)\n",
              "dealerships, armed non-matching", armed, Pct(base, armed));

  // The timer-noise-free bound: count the hook crossings of one execution
  // (probability-0 specs fire never but count every matching hit), then
  // charge each crossing the measured disarmed cost.
  for (const char* point : {"pig.udf", "pig.statement", "executor.node"}) {
    FaultInjector::FaultSpec counter;
    counter.point = point;
    counter.probability = 0;
    FaultInjector::Global().Arm(counter);
  }
  DealershipSecPerExec(num_cars, num_exec);
  uint64_t hooks = (FaultInjector::Global().hit_count("pig.udf") +
                    FaultInjector::Global().hit_count("pig.statement") +
                    FaultInjector::Global().hit_count("executor.node")) /
                   num_exec;
  FaultInjector::Global().Reset();
  double computed_pct = hooks * disarmed_ns * 1e-9 / base * 100.0;
  std::printf("%-34s %8llu hooks/exec -> %.4f%% of exec time\n\n",
              "computed disarmed-hook bound",
              static_cast<unsigned long long>(hooks), computed_pct);

  // 3. The options machinery on a statement-dense chain: default Execute
  // vs explicit ExecutionOptions with retries, timeout, and a lenient
  // policy enabled (per-attempt snapshots, deadline checks, jitter rng).
  int tuples = Scaled(2000, 50);
  double plain = ChainSecPerExec(num_exec, tuples, nullptr);
  ExecutionOptions options;
  options.node_timeout_seconds = 300;
  options.failure_policy = FailurePolicy::kSkipDownstream;
  double lenient = ChainSecPerExec(num_exec, tuples, &options);
  options.retry.max_attempts = 3;
  options.retry.initial_backoff_ms = 1;
  options.retry.jitter = 0.5;
  double retry = ChainSecPerExec(num_exec, tuples, &options);
  std::printf("%-34s %8.4f sec/exec\n", "chain, default options", plain);
  std::printf("%-34s %8.4f sec/exec  (%+.2f%%)\n",
              "chain, timeout + skip-downstream", lenient,
              Pct(plain, lenient));
  std::printf("%-34s %8.4f sec/exec  (%+.2f%%)\n",
              "chain, + retry=3", retry, Pct(plain, retry));

  std::printf(
      "\nexpected: the always-on costs — the disarmed Fire hook (a few ns)\n"
      "and the end-to-end delta with hooks armed-but-never-matching — stay\n"
      "well under 2%%. Non-default options pay for per-attempt state\n"
      "snapshots, proportional to module state size; that is the documented\n"
      "price of opting in, not a hook cost.\n");

  ResultsJson results("bench_fault_overhead");
  results.Add("disarmed_fire_ns", disarmed_ns);
  results.Add("computed_overhead_pct", computed_pct);
  results.Add("chain_default_seconds", plain);
  results.Emit();
  return 0;
}

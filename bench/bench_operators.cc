// Micro-benchmarks (google-benchmark): per-operator throughput of the Pig
// Latin engine with provenance tracking off (Arg(0)) and on (Arg(1)).
// Quantifies where the tracking overhead of Figures 5(a)/5(b) comes from.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "pig/interpreter.h"
#include "pig/parser.h"
#include "provenance/graph.h"

namespace lipstick {
namespace {

constexpr int kTuples = 1000;

/// Builds a relation of (id:int, key:int, val:double) with `n` tuples,
/// annotating each with a token when `writer` is given.
Relation MakeInput(const std::string& name, int n, ShardWriter* writer) {
  SchemaPtr schema = Schema::Make({Field("id", FieldType::Int()),
                                   Field("key", FieldType::Int()),
                                   Field("val", FieldType::Double())});
  Relation rel(name, schema);
  Rng rng(7);
  for (int i = 0; i < n; ++i) {
    Tuple t;
    t.Append(Value::Int(i));
    t.Append(Value::Int(rng.Uniform(0, 20)));
    t.Append(Value::Double(rng.UniformDouble() * 100));
    ProvAnnotation a =
        writer ? writer->Token("t" + std::to_string(i)) : kNoProvenance;
    rel.bag.Add(std::move(t), a);
  }
  return rel;
}

void RunStatementBench(benchmark::State& state, const char* source,
                       bool two_inputs = false) {
  bool track = state.range(0) != 0;
  pig::UdfRegistry udfs;
  auto program = pig::ParseProgram(source);
  if (!program.ok()) {
    state.SkipWithError(program.status().ToString().c_str());
    return;
  }
  pig::Interpreter interp(&udfs);
  for (auto _ : state) {
    ProvenanceGraph graph;
    auto writer = graph.writer();
    ShardWriter* w = track ? &writer : nullptr;
    pig::Environment env;
    env.Bind("A", MakeInput("A", kTuples, w));
    if (two_inputs) env.Bind("B", MakeInput("B", kTuples, w));
    Status st = interp.Run(*program, &env, w);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(env);
  }
  state.SetItemsProcessed(state.iterations() * kTuples);
}

void BM_ForEachProjection(benchmark::State& state) {
  RunStatementBench(state, "R = FOREACH A GENERATE id, val;");
}
BENCHMARK(BM_ForEachProjection)->Arg(0)->Arg(1);

void BM_ForEachComputed(benchmark::State& state) {
  RunStatementBench(state, "R = FOREACH A GENERATE id, val * 2.0 + 1.0 AS d;");
}
BENCHMARK(BM_ForEachComputed)->Arg(0)->Arg(1);

void BM_Filter(benchmark::State& state) {
  RunStatementBench(state, "R = FILTER A BY key < 10;");
}
BENCHMARK(BM_Filter)->Arg(0)->Arg(1);

void BM_Group(benchmark::State& state) {
  RunStatementBench(state, "R = GROUP A BY key;");
}
BENCHMARK(BM_Group)->Arg(0)->Arg(1);

void BM_GroupAggregate(benchmark::State& state) {
  RunStatementBench(state,
                    "G = GROUP A BY key;\n"
                    "R = FOREACH G GENERATE group, COUNT(A) AS n,"
                    " SUM(A.val) AS s;");
}
BENCHMARK(BM_GroupAggregate)->Arg(0)->Arg(1);

void BM_Join(benchmark::State& state) {
  RunStatementBench(state, "R = JOIN A BY id, B BY id;", /*two_inputs=*/true);
}
BENCHMARK(BM_Join)->Arg(0)->Arg(1);

void BM_Distinct(benchmark::State& state) {
  RunStatementBench(state, "K = FOREACH A GENERATE key;\nR = DISTINCT K;");
}
BENCHMARK(BM_Distinct)->Arg(0)->Arg(1);

void BM_Union(benchmark::State& state) {
  RunStatementBench(state, "R = UNION A, B;", /*two_inputs=*/true);
}
BENCHMARK(BM_Union)->Arg(0)->Arg(1);

void BM_OrderBy(benchmark::State& state) {
  RunStatementBench(state, "R = ORDER A BY val DESC;");
}
BENCHMARK(BM_OrderBy)->Arg(0)->Arg(1);

void BM_Cogroup(benchmark::State& state) {
  RunStatementBench(state, "R = COGROUP A BY key, B BY key;",
                    /*two_inputs=*/true);
}
BENCHMARK(BM_Cogroup)->Arg(0)->Arg(1);

/// Graph-side primitives.
void BM_GraphAppend(benchmark::State& state) {
  for (auto _ : state) {
    ProvenanceGraph graph;
    auto w = graph.writer();
    NodeId prev = w.Token("x");
    for (int i = 0; i < kTuples; ++i) {
      prev = w.Plus({prev});
    }
    benchmark::DoNotOptimize(graph);
  }
  state.SetItemsProcessed(state.iterations() * kTuples);
}
BENCHMARK(BM_GraphAppend);

void BM_GraphSeal(benchmark::State& state) {
  ProvenanceGraph graph;
  auto w = graph.writer();
  NodeId prev = w.Token("x");
  for (int i = 0; i < 10000; ++i) prev = w.Plus({prev});
  for (auto _ : state) {
    graph.MarkDirty();
    graph.Seal();
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_GraphSeal);

}  // namespace
}  // namespace lipstick

BENCHMARK_MAIN();

// Section 5.5 (text): size of the provenance of output tuples — the
// evidence that the recorded provenance is truly fine-grained. The paper
// reports that with numCars=20000 any particular output tuple (a sold car)
// depends on 1.8%-2.2% of the state tuples (~415 tuples) and two input
// tuples, versus 100% of state and inputs under coarse-grained provenance.

#include "bench_util.h"
#include "provenance/subgraph.h"
#include "workflowgen/dealership.h"

using namespace lipstick;
using namespace lipstick::bench;
using namespace lipstick::workflowgen;

int main() {
  Banner("Section 5.5", "fine-grained provenance size — Car dealerships",
         "fraction of state/input tuples an output (sale) depends on");
  int num_cars = Scaled(20000, 400);
  std::printf("%-8s %-14s %-16s %-12s %-12s %s\n", "run", "state_tuples",
              "state_in_deriv", "fraction", "inputs_used", "paper");
  int runs_with_sales = 0;
  for (uint64_t seed = 1; runs_with_sales < 5 && seed < 60; ++seed) {
    DealershipConfig cfg;
    cfg.num_cars = num_cars;
    cfg.num_executions = 60;
    cfg.seed = seed;
    auto wf = DealershipWorkflow::Create(cfg);
    Check(wf.status());
    ProvenanceGraph graph;
    auto stats = (*wf)->Run(&graph);
    Check(stats.status());
    if (!stats->purchased) continue;
    ++runs_with_sales;
    graph.Seal();

    NodeId sale = kInvalidNode;
    for (const InvocationInfo& inv : graph.invocations()) {
      if (graph.str(inv.module_name) == "car" && !inv.output_nodes.empty()) {
        sale = inv.output_nodes.back();
      }
    }
    auto ancestors = Ancestors(graph, sale);
    size_t state_total = 0, state_used = 0, inputs_used = 0;
    graph.ForEachAliveNode([&](NodeId id) {
      NodeRole role = graph.node(id).role();
      if (role == NodeRole::kStateBase) {
        ++state_total;
        state_used += ancestors.count(id) ? 1 : 0;
      } else if (role == NodeRole::kWorkflowInput) {
        inputs_used += ancestors.count(id) ? 1 : 0;
      }
    });
    char frac[32];
    std::snprintf(frac, sizeof(frac), "%.2f%%",
                  100.0 * state_used / state_total);
    std::printf("%-8d %-14zu %-16zu %-12s %-12zu %s\n", runs_with_sales,
                state_total, state_used, frac, inputs_used,
                "1.8-2.2% / 2 inputs");
  }
  std::printf(
      "\nnote: the sale's derivation touches only the cars of the\n"
      "requested model at the dealerships plus the accepted round's\n"
      "request/choice inputs — a small fraction of the state, against\n"
      "100%% under the coarse-grained black-box model [23]. The exact\n"
      "fraction is ~#models^-1 x share of bidding dealerships, matching\n"
      "the paper's ~2%% at its parameters.\n");

  // In-memory footprint of the columnar storage, reported as JSON so
  // tools/check.sh and EXPERIMENTS.md can track bytes/node regressions.
  {
    DealershipConfig cfg;
    cfg.num_cars = num_cars;
    cfg.num_executions = 60;
    cfg.seed = 1;
    auto wf = DealershipWorkflow::Create(cfg);
    Check(wf.status());
    ProvenanceGraph graph;
    Check((*wf)->Run(&graph).status());
    graph.Seal();
    ProvenanceGraph::MemoryStats mem = graph.ComputeMemoryStats();
    size_t nodes = graph.num_nodes();
    size_t edges = 0;
    graph.ForEachNode(
        [&](NodeId id) { edges += graph.ParentsOf(id).size(); });
    std::printf(
        "\nmemory_stats_json: {\"nodes\": %zu, \"edges\": %zu, "
        "\"total_bytes\": %zu, \"bytes_per_node\": %.1f, "
        "\"bytes_per_edge\": %.1f, \"column_bytes\": %zu, "
        "\"edge_arena_bytes\": %zu, \"csr_bytes\": %zu, "
        "\"value_bytes\": %zu, \"interner_bytes\": %zu, "
        "\"invocation_bytes\": %zu}\n",
        nodes, edges, mem.total(), double(mem.total()) / double(nodes),
        double(mem.total()) / double(edges), mem.column_bytes,
        mem.edge_arena_bytes, mem.csr_bytes, mem.value_bytes,
        mem.interner_bytes, mem.invocation_bytes);

    ResultsJson results("bench_prov_size");
    results.Add("nodes", static_cast<double>(nodes));
    results.Add("total_bytes", static_cast<double>(mem.total()));
    results.Add("memory_bytes_per_node",
                double(mem.total()) / double(nodes));
    results.Add("csr_bytes", static_cast<double>(mem.csr_bytes));
    results.Emit();
  }
  return 0;
}

// Ablation: lazy vs eager state-node construction (DESIGN.md §5).
//
// Section 3.2 creates an "s" node per state tuple per invocation. Applied
// literally, a dealership with 5000 cars creates 5000 nodes per dealer per
// execution — quadratic blowup that contradicts the paper's own measured
// graph sizes (§5.5: outputs depend on ~2% of the state). Lipstick's
// Provenance Tracker annotates tuples as they flow through the queries, so
// unused state contributes nothing; this implementation reproduces that
// with lazy wrapping. This harness quantifies the difference.

#include "bench_util.h"
#include "workflowgen/dealership.h"

using namespace lipstick;
using namespace lipstick::bench;
using namespace lipstick::workflowgen;

int main() {
  Banner("Ablation", "lazy vs eager state-node construction",
         "graph size and tracking time for the same dealership run");
  int num_cars = Scaled(20000, 400);
  std::printf("%-8s %-10s %-12s %-12s %-14s %s\n", "mode", "numExec",
              "nodes", "edges", "track_sec", "nodes_per_exec");
  size_t final_nodes[2] = {0, 0};  // [eager]
  for (int num_exec : {5, 10, 20}) {
    for (bool eager : {false, true}) {
      DealershipConfig cfg;
      cfg.num_cars = num_cars;
      cfg.num_executions = num_exec;
      cfg.seed = 404;
      cfg.accept_probability = 0;
      auto wf = DealershipWorkflow::Create(cfg);
      Check(wf.status());
      (*wf)->executor().set_eager_state_nodes(eager);
      ProvenanceGraph graph;
      WallTimer timer;
      for (int e = 1; e <= num_exec; ++e) {
        Check((*wf)->ExecuteOnce(e, &graph).status());
      }
      double sec = timer.ElapsedSeconds();
      std::printf("%-8s %-10d %-12zu %-12zu %-14.3f %zu\n",
                  eager ? "eager" : "lazy", num_exec, graph.num_nodes(),
                  graph.num_edges(), sec, graph.num_nodes() / num_exec);
      final_nodes[eager ? 1 : 0] = graph.num_nodes();
    }
  }
  std::printf(
      "\nexpected: eager construction inflates the graph by the full state\n"
      "size per invocation (~2x8 dealer invocations x numCars/4 nodes per\n"
      "execution) with no change in query semantics; lazy keeps the graph\n"
      "proportional to the data actually used.\n");

  ResultsJson results("bench_ablation_state_nodes");
  results.Add("lazy_nodes", static_cast<double>(final_nodes[0]));
  results.Add("eager_nodes", static_cast<double>(final_nodes[1]));
  results.Add("eager_inflation_ratio",
              double(final_nodes[1]) / double(final_nodes[0]));
  results.Emit();
  return 0;
}

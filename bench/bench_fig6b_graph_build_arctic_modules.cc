// Figure 6(b): provenance graph building time, Arctic stations, dense
// topology with fan-out 2, by query selectivity, for 2 / 6 / 12 / 24
// station modules. All workflows are executed 100 times per run (paper
// setup); lower selectivity => more observations match => larger graph.

#include <sstream>

#include "bench_util.h"
#include "provenance/provio.h"
#include "workflowgen/arctic.h"

using namespace lipstick;
using namespace lipstick::bench;
using namespace lipstick::workflowgen;

namespace {

double BuildTime(const ProvenanceGraph& graph, size_t* nodes) {
  std::ostringstream file;
  Check(SaveGraph(graph, file));
  std::string serialized = file.str();
  std::istringstream in(serialized);
  WallTimer timer;
  Result<ProvenanceGraph> loaded = LoadGraph(in);
  Check(loaded.status());
  loaded->Seal();
  double t = timer.ElapsedSeconds();
  *nodes = loaded->num_nodes();
  return t;
}

}  // namespace

int main() {
  Banner("Figure 6(b)",
         "provenance graph building time — Arctic stations, dense fan-out 2",
         "build time (sec) by selectivity, for 2/6/12/24 modules; "
         "numExec=100");
  int num_exec = Scaled(100, 5);
  std::printf("%-12s %-10s %-12s %s\n", "selectivity", "modules", "nodes",
              "build_sec");
  double max_build = 0;
  for (Selectivity sel : {Selectivity::kAll, Selectivity::kSeason,
                          Selectivity::kMonth, Selectivity::kYear}) {
    for (int modules : {2, 6, 12, 24}) {
      ArcticConfig cfg;
      cfg.topology = ArcticTopology::kDense;
      cfg.fan_out = 2;
      cfg.num_stations = modules;
      cfg.selectivity = sel;
      cfg.history_years = Scaled(40, 2);
      cfg.seed = 31337;
      auto wf = ArcticWorkflow::Create(cfg);
      Check(wf.status());
      ProvenanceGraph graph;
      Check((*wf)->RunSeries(num_exec, &graph).status());
      size_t nodes = 0;
      double t = BuildTime(graph, &nodes);
      std::printf("%-12s %-10d %-12zu %.4f\n", SelectivityName(sel),
                  modules, nodes, t);
      if (t > max_build) max_build = t;
    }
  }
  std::printf(
      "\nexpected shape (paper): build time grows with the number of\n"
      "modules, and with decreasing selectivity (all > season > month >\n"
      "year).\n");

  ResultsJson results("bench_fig6b_graph_build_arctic_modules");
  results.Add("max_build_seconds", max_build);
  results.Emit();
  return 0;
}

// Section 5.6 "Delete": deletion-propagation query performance. The paper
// selects nodes as in the subgraph benchmark and reports that deletion
// queries traverse only descendants and therefore run in under a
// millisecond in most cases (at most ~10-13 ms per node).

#include <algorithm>
#include <vector>

#include "bench_util.h"
#include "provenance/deletion.h"
#include "workflowgen/dealership.h"

using namespace lipstick;
using namespace lipstick::bench;
using namespace lipstick::workflowgen;

int main() {
  Banner("Section 5.6 (Delete)", "deletion propagation time — dealerships",
         "per-node deletion propagation over the 50 highest-fanout nodes");
  int num_cars = Scaled(20000, 400);
  DealershipConfig cfg;
  cfg.num_cars = num_cars;
  cfg.num_executions = Scaled(100, 5);
  cfg.seed = 888;
  cfg.accept_probability = 0;
  auto wf = DealershipWorkflow::Create(cfg);
  Check(wf.status());
  ProvenanceGraph graph;
  for (int e = 1; e <= cfg.num_executions; ++e) {
    Check((*wf)->ExecuteOnce(e, &graph).status());
  }
  graph.Seal();
  std::printf("graph: %zu nodes, %zu edges\n\n", graph.num_alive(),
              graph.num_edges());

  std::vector<std::pair<size_t, NodeId>> fanout;
  graph.ForEachAliveNode([&](NodeId id) {
    fanout.emplace_back(graph.ChildrenOf(id).size(), id);
  });
  std::sort(fanout.rbegin(), fanout.rend());
  if (fanout.size() > 50) fanout.resize(50);

  double total_ms = 0, max_ms = 0;
  size_t under_1ms = 0, max_deleted = 0;
  for (const auto& [children, id] : fanout) {
    WallTimer timer;
    auto deleted = *ComputeDeletionSet(graph, {id});
    double ms = timer.ElapsedMillis();
    total_ms += ms;
    max_ms = std::max(max_ms, ms);
    if (ms < 1.0) ++under_1ms;
    max_deleted = std::max(max_deleted, deleted.size());
  }
  std::printf("queries:            %zu\n", fanout.size());
  std::printf("avg time:           %.3f ms\n", total_ms / fanout.size());
  std::printf("max time:           %.3f ms\n", max_ms);
  std::printf("under 1 ms:         %zu / %zu\n", under_1ms, fanout.size());
  std::printf("largest delete set: %zu nodes\n", max_deleted);
  std::printf(
      "\nexpected shape (paper): deletion traverses only descendants, so\n"
      "most queries complete in <1 ms, max ~10-13 ms.\n");

  ResultsJson results("bench_delete");
  results.Add("queries", static_cast<double>(fanout.size()));
  results.Add("avg_delete_ms", total_ms / fanout.size());
  results.Add("max_delete_ms", max_ms);
  results.Emit();
  return 0;
}
